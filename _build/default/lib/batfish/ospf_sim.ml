open Netcore
open Policy

type entry = { prefix : Prefix.t; cost : int; next_hop : string option }

type ribs = (string * entry list) list

let empty : ribs = []

let default_cost iface = if Iface.is_loopback iface then 1 else 10

(* Effective OSPF membership of one router: interface -> (area, cost,
   passive), combining explicit per-interface settings with network-statement
   coverage (the same rule as Juniper.Translate). *)
let membership (config : Config_ir.t) =
  match config.Config_ir.ospf with
  | None -> []
  | Some o ->
      let area_of addr =
        List.find_map
          (fun (p, area) -> if Prefix.contains_addr p addr then Some area else None)
          o.Config_ir.networks
      in
      let explicit iface =
        List.find_opt
          (fun (oi : Config_ir.ospf_interface) -> Iface.equal oi.Config_ir.iface iface)
          o.Config_ir.interfaces
      in
      let covered =
        List.filter_map
          (fun (i : Config_ir.interface) ->
            match i.Config_ir.address with
            | Some (addr, len) when not i.Config_ir.shutdown -> (
                let area =
                  match area_of addr with
                  | Some a -> Some a
                  | None ->
                      (* Explicit interface config without a covering network
                         statement (the Junos style). *)
                      Option.map
                        (fun (oi : Config_ir.ospf_interface) -> oi.Config_ir.area)
                        (explicit i.Config_ir.iface)
                in
                match area with
                | Some area ->
                    let prior = explicit i.Config_ir.iface in
                    let cost =
                      match Option.bind prior (fun (oi : Config_ir.ospf_interface) -> oi.Config_ir.cost) with
                      | Some c -> c
                      | None -> default_cost i.Config_ir.iface
                    in
                    let passive =
                      match prior with
                      | Some oi -> oi.Config_ir.passive
                      | None -> false
                    in
                    Some (i.Config_ir.iface, (area, cost, passive, Prefix.make addr len))
                | None -> None)
            | _ -> None)
          config.Config_ir.interfaces
      in
      covered

let run (net : Net.t) =
  let config name =
    Net.config_of net name
  in
  let names =
    List.map (fun (r : Topology.router) -> r.Topology.name) net.Net.topology.Topology.routers
  in
  let members = List.map (fun n -> (n, membership (config n))) names in
  let member_of name iface =
    Option.bind (List.assoc_opt name members) (fun l ->
        List.find_opt (fun (i, _) -> Iface.equal i iface) l)
  in
  (* Directed edges: (from, to, cost of from's outgoing interface). *)
  let edges =
    List.concat_map
      (fun (l : Topology.link) ->
        let a = l.Topology.a and b = l.Topology.b in
        let ma = member_of a.Topology.router a.Topology.iface in
        let mb = member_of b.Topology.router b.Topology.iface in
        match (ma, mb) with
        | Some (_, (area_a, cost_a, passive_a, _)), Some (_, (area_b, cost_b, passive_b, _))
          when area_a = area_b && (not passive_a) && not passive_b ->
            [
              (a.Topology.router, b.Topology.router, cost_a);
              (b.Topology.router, a.Topology.router, cost_b);
            ]
        | _ -> [])
      net.Net.topology.Topology.links
  in
  (* Advertised subnets per router: every member interface's subnet, with
     the interface cost as the last-hop cost. *)
  let advertised name =
    match List.assoc_opt name members with
    | None -> []
    | Some l -> List.map (fun (_, (_, cost, _, subnet)) -> (subnet, cost)) l
  in
  (* Dijkstra from [src] over the router graph. *)
  let distances src =
    let dist = Hashtbl.create 16 in
    Hashtbl.replace dist src (0, None);
    let visited = Hashtbl.create 16 in
    let rec go () =
      let best =
        Hashtbl.fold
          (fun n (d, _) acc ->
            if Hashtbl.mem visited n then acc
            else
              match acc with
              | Some (_, bd) when bd <= d -> acc
              | _ -> Some (n, d))
          dist None
      in
      match best with
      | None -> ()
      | Some (n, d) ->
          Hashtbl.replace visited n ();
          List.iter
            (fun (from, to_, c) ->
              if from = n then
                let candidate = d + c in
                let first_hop =
                  if n = src then Some to_
                  else match Hashtbl.find_opt dist n with Some (_, fh) -> fh | None -> None
                in
                match Hashtbl.find_opt dist to_ with
                | Some (existing, _) when existing <= candidate -> ()
                | _ -> Hashtbl.replace dist to_ (candidate, first_hop))
            edges;
          go ()
    in
    go ();
    dist
  in
  let rib_for name =
    if List.assoc_opt name members = Some [] || List.assoc_opt name members = None then []
    else begin
      let dist = distances name in
      let candidates = Hashtbl.create 32 in
      List.iter
        (fun other ->
          match Hashtbl.find_opt dist other with
          | None -> ()
          | Some (d, first_hop) ->
              List.iter
                (fun (subnet, last_cost) ->
                  let total = if other = name then last_cost else d + last_cost in
                  let next_hop = if other = name then None else first_hop in
                  match Hashtbl.find_opt candidates subnet with
                  | Some (existing, _) when existing <= total -> ()
                  | _ -> Hashtbl.replace candidates subnet (total, next_hop))
                (advertised other))
        names;
      Hashtbl.fold
        (fun prefix (cost, next_hop) acc -> { prefix; cost; next_hop } :: acc)
        candidates []
      |> List.sort (fun a b -> Prefix.compare a.prefix b.prefix)
    end
  in
  List.map (fun n -> (n, rib_for n)) names

let rib (t : ribs) name = Option.value ~default:[] (List.assoc_opt name t)

let lookup t ~router prefix =
  List.find_opt (fun e -> Prefix.equal e.prefix prefix) (rib t router)

let reachable t ~router prefix = lookup t ~router prefix <> None
let cost_to t ~router prefix = Option.map (fun e -> e.cost) (lookup t ~router prefix)
