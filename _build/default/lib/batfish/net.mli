(** A network under analysis: the topology plus each router's parsed
    configuration. Shared by the OSPF and BGP simulators. *)

type t = {
  topology : Netcore.Topology.t;
  configs : (string * Policy.Config_ir.t) list;
}

val config_of : t -> string -> Policy.Config_ir.t
(** The router's configuration, or an empty one when absent. *)

val asn_of : t -> string -> int
(** The configured BGP AS, falling back to the topology's. *)
