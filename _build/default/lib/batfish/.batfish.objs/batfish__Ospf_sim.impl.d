lib/batfish/ospf_sim.ml: Config_ir Hashtbl Iface List Net Netcore Option Policy Prefix Topology
