lib/batfish/parse_check.mli: Netcore Policy
