lib/batfish/ospf_sim.mli: Net Netcore Prefix
