lib/batfish/bgp_sim.ml: As_path Community Config_ir Eval Format Hashtbl Ipv4 List Net Netcore Option Ospf_sim Policy Prefix Printf Route Topology
