lib/batfish/search_route_policies.ml: Action Community Config_ir Eval List Netcore Policy Printf Route String Symbolic
