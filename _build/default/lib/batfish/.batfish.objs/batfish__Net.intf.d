lib/batfish/net.mli: Netcore Policy
