lib/batfish/plain_bgp.ml: Config_ir List Netcore Policy Prefix Topology
