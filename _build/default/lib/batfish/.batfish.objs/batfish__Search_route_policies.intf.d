lib/batfish/search_route_policies.mli: Action Community Config_ir Netcore Policy Route Symbolic
