lib/batfish/bgp_sim.mli: Config_ir Format Net Netcore Policy Prefix Route Topology
