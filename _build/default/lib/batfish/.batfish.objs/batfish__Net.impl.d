lib/batfish/net.ml: List Netcore Policy
