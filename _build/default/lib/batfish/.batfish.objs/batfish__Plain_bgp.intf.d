lib/batfish/plain_bgp.mli: Netcore Policy
