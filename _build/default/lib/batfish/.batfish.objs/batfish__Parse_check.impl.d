lib/batfish/parse_check.ml: Cisco Juniper List Netcore
