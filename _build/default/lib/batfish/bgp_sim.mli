(** eBGP control-plane simulation to a converged fixpoint.

    This plays the role of the paper's final step: "we simulate the entire
    BGP communication using Batfish ... in order to ensure that the global
    policy is satisfied". Each router originates its declared networks,
    routes propagate over the topology's links through the senders' export
    and receivers' import policies, best paths are selected with the
    standard decision process (local preference, AS-path length, MED,
    then a deterministic tie-break), and AS-path loop prevention applies. *)

open Netcore
open Policy

type network = Net.t = {
  topology : Topology.t;
  configs : (string * Config_ir.t) list;
}

type rib_entry = {
  route : Route.t;
  learned_from : string option;
      (** Name of the neighbouring router, [None] for locally originated
          networks. *)
}

type ribs
(** Converged per-router routing tables. *)

exception Did_not_converge of int

val run : ?max_iterations:int -> network -> ribs
(** Raises {!Did_not_converge} after [max_iterations] (default 64) sweeps —
    with eBGP loop prevention this indicates a bug, not an oscillating
    policy. Routers present in the topology but missing from [configs]
    participate with empty configurations (originate nothing, accept
    nothing).

    Redistribution: a router whose BGP process redistributes OSPF (or
    connected routes) originates its OSPF routing table (resp. connected
    subnets) into BGP, passed through the redistribution route map; the
    OSPF metric becomes the MED and the route keeps its source protocol, so
    protocol-scoped export policies apply. *)

val rib : ribs -> string -> rib_entry list
(** Sorted by prefix; empty for unknown routers. *)

val lookup : ribs -> router:string -> Prefix.t -> rib_entry option
(** Exact-prefix lookup. *)

val reachable : ribs -> router:string -> Prefix.t -> bool
(** The router has a route to exactly this prefix — its own networks
    included. *)

val routers : ribs -> string list

val pp_ribs : Format.formatter -> ribs -> unit
