open Netcore
open Policy

let configs (t : Topology.t) =
  List.map
    (fun (r : Topology.router) ->
      let interfaces =
        List.map
          (fun (p : Topology.port) ->
            Config_ir.interface
              ~address:(p.Topology.addr, Prefix.len p.Topology.subnet)
              p.Topology.iface)
          r.Topology.ports
      in
      let neighbors =
        List.map
          (fun (s : Topology.session) ->
            Config_ir.neighbor s.Topology.peer_addr ~remote_as:s.Topology.peer_asn)
          (Topology.sessions_of t r.Topology.name)
      in
      let config =
        {
          (Config_ir.empty r.Topology.name) with
          Config_ir.interfaces;
          bgp =
            Some
              {
                Config_ir.asn = r.Topology.asn;
                router_id = Some r.Topology.router_id;
                networks = Topology.networks_of t r.Topology.name;
                neighbors;
                redistributions = [];
              };
        }
      in
      (r.Topology.name, config))
    t.Topology.routers
