type dialect = Cisco_ios | Junos

let dialect_name = function Cisco_ios -> "Cisco IOS" | Junos -> "Junos"

let check dialect text =
  match dialect with
  | Cisco_ios ->
      let ir, diags = Cisco.Parser.parse text in
      (ir, diags @ Cisco.Lint.check ir)
  | Junos ->
      let ir, diags = Juniper.Parser.parse text in
      (ir, diags @ Juniper.Lint.check ir)

let errors_only diags = List.filter Netcore.Diag.is_error diags

let syntax_ok dialect text =
  let _, diags = check dialect text in
  errors_only diags = []
