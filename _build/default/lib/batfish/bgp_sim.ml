open Netcore
open Policy

type network = Net.t = {
  topology : Topology.t;
  configs : (string * Config_ir.t) list;
}

type rib_entry = { route : Route.t; learned_from : string option }

type ribs = (string * rib_entry Prefix.Map.t) list

exception Did_not_converge of int

let config_of = Net.config_of
let asn_of = Net.asn_of

(* Standard BGP decision process, restricted to the attributes we model.
   Locally originated networks win outright (IOS weight). *)
let better (a : rib_entry) (b : rib_entry) =
  let key (e : rib_entry) =
    ( (match e.learned_from with None -> 0 | Some _ -> 1),
      -e.route.Route.local_pref,
      As_path.length e.route.Route.as_path,
      e.route.Route.med,
      (match e.learned_from with None -> "" | Some n -> n) )
  in
  compare (key a) (key b) < 0

let best_of = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc x -> if better x acc then x else acc) e rest)

(* Routes a router originates into BGP: its network statements plus
   whatever its redistributions admit. A dangling redistribution route map
   redistributes nothing (IOS treats the undefined map as deny-all in this
   context, and Juniper.Translate makes the same choice). *)
let locals net ospf_ribs name =
  let config = config_of net name in
  match config.Config_ir.bgp with
  | None -> []
  | Some b ->
      let networks =
        List.map (fun p -> { route = Route.make p; learned_from = None }) b.Config_ir.networks
      in
      let env = Eval.env_of_config config in
      let redistribute (r : Config_ir.redistribution) =
        let source_routes =
          match r.Config_ir.from_protocol with
          | Route.Ospf ->
              List.map
                (fun (e : Ospf_sim.entry) ->
                  Route.make ~source:Route.Ospf ~med:e.Ospf_sim.cost ~origin:Route.Incomplete
                    e.Ospf_sim.prefix)
                (Ospf_sim.rib ospf_ribs name)
          | Route.Connected ->
              List.map
                (fun p -> Route.make ~source:Route.Connected ~origin:Route.Incomplete p)
                (Config_ir.connected_prefixes config)
          | Route.Static ->
              List.map
                (fun (sr : Config_ir.static_route) ->
                  Route.make ~source:Route.Static ~origin:Route.Incomplete
                    sr.Config_ir.destination)
                config.Config_ir.statics
          | Route.Bgp -> []
        in
        let policy =
          match r.Config_ir.policy with
          | None -> Some None
          | Some name -> (
              match Config_ir.find_route_map config name with
              | Some m -> Some (Some m)
              | None -> None)
        in
        match policy with
        | None -> []
        | Some policy ->
            List.filter_map
              (fun route ->
                match Eval.eval_optional env policy route with
                | Eval.Permitted out -> Some { route = out; learned_from = None }
                | Eval.Denied -> None)
              source_routes
      in
      networks @ List.concat_map redistribute b.Config_ir.redistributions

(* What [sender] advertises to [receiver] over one link, given the sender's
   current RIB. *)
let advertisements net (sender : string) (receiver : string)
    ~(sender_addr : Ipv4.t) ~(receiver_addr : Ipv4.t) sender_rib =
  let cfg_s = config_of net sender in
  match cfg_s.Config_ir.bgp with
  | None -> []
  | Some b -> (
      match Config_ir.find_neighbor b receiver_addr with
      | None -> []
      | Some neighbor ->
          let env = Eval.env_of_config cfg_s in
          let export = Option.bind neighbor.Config_ir.export_policy (Config_ir.find_route_map cfg_s) in
          Prefix.Map.fold
            (fun _p (entry : rib_entry) acc ->
              if entry.learned_from = Some receiver then acc
              else
                match Eval.eval_optional env export entry.route with
                | Eval.Denied -> acc
                | Eval.Permitted r ->
                    let r =
                      if neighbor.Config_ir.send_community then r
                      else Route.with_communities r Community.Set.empty
                    in
                    let r =
                      {
                        r with
                        Route.as_path = As_path.prepend (asn_of net sender) r.Route.as_path;
                        next_hop = Some sender_addr;
                        local_pref = Route.default_local_pref;
                        source = Route.Bgp;
                      }
                    in
                    r :: acc)
            sender_rib [])

let receive net (receiver : string) (sender : string) ~(sender_addr : Ipv4.t) routes =
  let cfg_r = config_of net receiver in
  match cfg_r.Config_ir.bgp with
  | None -> []
  | Some b -> (
      match Config_ir.find_neighbor b sender_addr with
      | None -> []
      | Some neighbor ->
          let env = Eval.env_of_config cfg_r in
          let import = Option.bind neighbor.Config_ir.import_policy (Config_ir.find_route_map cfg_r) in
          List.filter_map
            (fun (r : Route.t) ->
              if As_path.mem (asn_of net receiver) r.Route.as_path then None
              else
                match Eval.eval_optional env import r with
                | Eval.Denied -> None
                | Eval.Permitted r -> Some { route = r; learned_from = Some sender })
            routes)

let adjacency_pairs net name =
  List.filter_map
    (fun (l : Topology.link) ->
      if l.Topology.a.Topology.router = name then
        Some (l.Topology.b.Topology.router, l.Topology.b.Topology.addr, l.Topology.a.Topology.addr)
      else if l.Topology.b.Topology.router = name then
        Some (l.Topology.a.Topology.router, l.Topology.a.Topology.addr, l.Topology.b.Topology.addr)
      else None)
    net.topology.Topology.links

let rib_equal (a : rib_entry Prefix.Map.t) (b : rib_entry Prefix.Map.t) =
  Prefix.Map.equal ( = ) a b

let needs_ospf net =
  List.exists
    (fun (_, (c : Config_ir.t)) ->
      match c.Config_ir.bgp with
      | Some b ->
          List.exists
            (fun (r : Config_ir.redistribution) -> r.Config_ir.from_protocol = Route.Ospf)
            b.Config_ir.redistributions
      | None -> false)
    net.configs

let run ?(max_iterations = 64) net =
  let names = List.map (fun (r : Topology.router) -> r.Topology.name) net.topology.Topology.routers in
  let ospf_ribs = if needs_ospf net then Ospf_sim.run net else Ospf_sim.empty in
  let locals net name = locals net ospf_ribs name in
  let initial =
    List.map
      (fun name ->
        let m =
          List.fold_left
            (fun acc (e : rib_entry) -> Prefix.Map.add e.route.Route.prefix e acc)
            Prefix.Map.empty (locals net name)
        in
        (name, m))
      names
  in
  let step (state : ribs) =
    List.map
      (fun name ->
        let candidates = Hashtbl.create 16 in
        let add (e : rib_entry) =
          let key = e.route.Route.prefix in
          let existing = Option.value ~default:[] (Hashtbl.find_opt candidates key) in
          Hashtbl.replace candidates key (e :: existing)
        in
        List.iter add (locals net name);
        List.iter
          (fun (peer, peer_addr, my_addr) ->
            let peer_rib = Option.value ~default:Prefix.Map.empty (List.assoc_opt peer state) in
            let advertised =
              advertisements net peer name ~sender_addr:peer_addr ~receiver_addr:my_addr
                peer_rib
            in
            List.iter add (receive net name peer ~sender_addr:peer_addr advertised))
          (adjacency_pairs net name);
        let m =
          Hashtbl.fold
            (fun prefix cands acc ->
              match best_of cands with
              | Some e -> Prefix.Map.add prefix e acc
              | None -> acc)
            candidates Prefix.Map.empty
        in
        (name, m))
      names
  in
  let rec iterate state k =
    if k > max_iterations then raise (Did_not_converge max_iterations);
    let next = step state in
    let same =
      List.for_all2 (fun (_, a) (_, b) -> rib_equal a b) state next
    in
    if same then next else iterate next (k + 1)
  in
  iterate initial 1

let rib (t : ribs) name =
  match List.assoc_opt name t with
  | None -> []
  | Some m -> List.map snd (Prefix.Map.bindings m)

let lookup t ~router prefix =
  Option.bind (List.assoc_opt router t) (Prefix.Map.find_opt prefix)

let reachable t ~router prefix = lookup t ~router prefix <> None

let routers t = List.map fst t

let pp_ribs ppf (t : ribs) =
  List.iter
    (fun (name, m) ->
      Format.fprintf ppf "== %s ==@." name;
      Prefix.Map.iter
        (fun _ (e : rib_entry) ->
          Format.fprintf ppf "  %s%s@."
            (Route.to_string e.route)
            (match e.learned_from with
            | Some n -> Printf.sprintf " (via %s)" n
            | None -> " (local)"))
        m)
    t
