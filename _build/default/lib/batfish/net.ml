type t = {
  topology : Netcore.Topology.t;
  configs : (string * Policy.Config_ir.t) list;
}

let config_of t name =
  match List.assoc_opt name t.configs with
  | Some c -> c
  | None -> Policy.Config_ir.empty name

let asn_of t name =
  match (config_of t name).Policy.Config_ir.bgp with
  | Some b when b.Policy.Config_ir.asn > 0 -> b.Policy.Config_ir.asn
  | _ -> (
      match Netcore.Topology.find_router t.topology name with
      | Some r -> r.Netcore.Topology.asn
      | None -> 0)
