(** Intra-area OSPF simulation: adjacency formation, link costs, shortest
    paths (Dijkstra), and the resulting per-router OSPF routing tables.

    Model: an adjacency forms over a topology link when both endpoint
    routers run OSPF, both incident interfaces are members of the same area
    (by explicit per-interface configuration or by coverage of a
    [network ... area] statement), and neither side is passive. Every
    member interface's subnet is advertised (passive interfaces advertise
    but form no adjacency — the standard way to announce a LAN without
    flooding it). Path cost sums the outgoing interface costs along the
    path, using Cisco's defaults (1 for loopbacks, 10 otherwise) when not
    explicit. Inter-area summarization is out of scope. *)

open Netcore


type entry = {
  prefix : Prefix.t;
  cost : int;
  next_hop : string option;  (** Next router on the path, [None] if local. *)
}

type ribs

val empty : ribs
(** No OSPF state at all (used when no router redistributes OSPF). *)

val run : Net.t -> ribs

val rib : ribs -> string -> entry list
(** Sorted by prefix; empty for routers not running OSPF. *)

val lookup : ribs -> router:string -> Prefix.t -> entry option
val reachable : ribs -> router:string -> Prefix.t -> bool
val cost_to : ribs -> router:string -> Prefix.t -> int option
