(** Plain BGP configurations for an arbitrary topology: every router
    announces its connected networks to every neighbor with no policies.
    Used to exercise the simulator on chains and rings. *)

val configs : Netcore.Topology.t -> (string * Policy.Config_ir.t) list
