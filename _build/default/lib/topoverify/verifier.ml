open Netcore
open Policy

type kind =
  | Interface_address_mismatch
  | Missing_interface
  | Local_as_mismatch
  | Router_id_mismatch
  | Neighbor_not_declared
  | Network_not_declared
  | Incorrect_network
  | Incorrect_neighbor
  | No_bgp_process

type finding = {
  kind : kind;
  message : string;
  iface : Iface.t option;
  peer : Ipv4.t option;
  network : Prefix.t option;
}

let kind_to_string = function
  | Interface_address_mismatch -> "interface-address-mismatch"
  | Missing_interface -> "missing-interface"
  | Local_as_mismatch -> "local-as-mismatch"
  | Router_id_mismatch -> "router-id-mismatch"
  | Neighbor_not_declared -> "neighbor-not-declared"
  | Network_not_declared -> "network-not-declared"
  | Incorrect_network -> "incorrect-network"
  | Incorrect_neighbor -> "incorrect-neighbor"
  | No_bgp_process -> "no-bgp-process"

let check topology ~router config =
  let spec = Topology.find_router_exn topology router in
  let findings = ref [] in
  let note ?iface ?peer ?network kind fmt =
    Printf.ksprintf
      (fun message -> findings := { kind; message; iface; peer; network } :: !findings)
      fmt
  in
  (* 1-2: interfaces and their addresses. *)
  List.iter
    (fun (port : Topology.port) ->
      match Config_ir.find_interface config port.Topology.iface with
      | None ->
          note ~iface:port.Topology.iface Missing_interface
            "Interface %s is not configured"
            (Iface.cisco_name port.Topology.iface)
      | Some i -> (
          match i.Config_ir.address with
          | None ->
              note ~iface:port.Topology.iface Interface_address_mismatch
                "Interface %s has no IP address. Expected %s"
                (Iface.cisco_name port.Topology.iface)
                (Ipv4.to_string port.Topology.addr)
          | Some (addr, len) ->
              if not (Ipv4.equal addr port.Topology.addr) then
                note ~iface:port.Topology.iface Interface_address_mismatch
                  "Interface %s ip address does not match with given config. \
                   Expected %s, found %s"
                  (Iface.cisco_name port.Topology.iface)
                  (Ipv4.to_string port.Topology.addr)
                  (Ipv4.to_string addr)
              else if len <> Prefix.len port.Topology.subnet then
                note ~iface:port.Topology.iface Interface_address_mismatch
                  "Interface %s mask length does not match. Expected /%d, found /%d"
                  (Iface.cisco_name port.Topology.iface)
                  (Prefix.len port.Topology.subnet)
                  len))
    spec.Topology.ports;
  (match config.Config_ir.bgp with
  | None -> note No_bgp_process "Router %s has no BGP process configured" router
  | Some b ->
      (* 2: local AS. *)
      if b.Config_ir.asn <> spec.Topology.asn then
        note Local_as_mismatch "Local AS number does not match. Expected %d, found %d"
          spec.Topology.asn b.Config_ir.asn;
      (* 3: router id. *)
      (match b.Config_ir.router_id with
      | Some rid when not (Ipv4.equal rid spec.Topology.router_id) ->
          note Router_id_mismatch
            "Router ID does not match with given config. Expected %s, found %s"
            (Ipv4.to_string spec.Topology.router_id)
            (Ipv4.to_string rid)
      | Some _ -> ()
      | None ->
          note Router_id_mismatch "Router ID is not configured. Expected %s"
            (Ipv4.to_string spec.Topology.router_id));
      (* 4 & 7: neighbors, both directions. *)
      let sessions = Topology.sessions_of topology router in
      List.iter
        (fun (s : Topology.session) ->
          let found =
            List.find_opt
              (fun (n : Config_ir.neighbor) ->
                Ipv4.equal n.Config_ir.addr s.Topology.peer_addr
                && n.Config_ir.remote_as = s.Topology.peer_asn)
              b.Config_ir.neighbors
          in
          if found = None then
            note ~peer:s.Topology.peer_addr Neighbor_not_declared
              "Neighbor with IP address %s and AS %d not declared"
              (Ipv4.to_string s.Topology.peer_addr)
              s.Topology.peer_asn)
        sessions;
      List.iter
        (fun (n : Config_ir.neighbor) ->
          let expected =
            List.exists
              (fun (s : Topology.session) ->
                Ipv4.equal n.Config_ir.addr s.Topology.peer_addr
                && n.Config_ir.remote_as = s.Topology.peer_asn)
              sessions
          in
          if not expected then
            note ~peer:n.Config_ir.addr Incorrect_neighbor
              "Incorrect neighbor declaration. No neighbor with IP address %s AS %d \
               found"
              (Ipv4.to_string n.Config_ir.addr)
              n.Config_ir.remote_as)
        b.Config_ir.neighbors;
      (* 5 & 6: networks, both directions. *)
      let expected_networks = Topology.networks_of topology router in
      List.iter
        (fun net ->
          if not (List.exists (Prefix.equal net) b.Config_ir.networks) then
            note ~network:net Network_not_declared "Network %s not declared"
              (Prefix.to_string net))
        expected_networks;
      List.iter
        (fun net ->
          if not (List.exists (Prefix.equal net) expected_networks) then
            note ~network:net Incorrect_network
              "Incorrect network declaration. %s is not directly connected to %s"
              (Prefix.to_string net) router)
        b.Config_ir.networks);
  List.rev !findings

let check_from_json json ~router config =
  match Topology.of_json json with
  | Error e -> Error e
  | Ok topology -> (
      match Topology.find_router topology router with
      | None -> Error (Printf.sprintf "router %s not in topology dictionary" router)
      | Some _ -> Ok (check topology ~router config))

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s" (kind_to_string f.kind) f.message
