(** The topology verifier of Section 4: "an automated 'topology verifier'
    that compares the config against the previously specified JSON dictionary
    and outputs inconsistencies".

    The finding kinds and messages reproduce Table 3's seven examples:
    interface address mismatch, local AS mismatch, router-id mismatch,
    missing neighbor, missing network, network not directly connected, and
    neighbor that should not exist. *)

open Netcore

type kind =
  | Interface_address_mismatch
  | Missing_interface
  | Local_as_mismatch
  | Router_id_mismatch
  | Neighbor_not_declared
  | Network_not_declared
  | Incorrect_network
  | Incorrect_neighbor
  | No_bgp_process

type finding = {
  kind : kind;
  message : string;
  iface : Iface.t option;  (** The interface involved, when applicable. *)
  peer : Ipv4.t option;  (** The neighbor address involved, when applicable. *)
  network : Prefix.t option;  (** The network involved, when applicable. *)
}

val kind_to_string : kind -> string

val check : Topology.t -> router:string -> Policy.Config_ir.t -> finding list
(** Compare a single router's parsed configuration against its row of the
    topology dictionary. Raises [Invalid_argument] if [router] is not in the
    topology. *)

val check_from_json : Json.t -> router:string -> Policy.Config_ir.t -> (finding list, string) result
(** Same, starting from the JSON dictionary itself. *)

val pp_finding : Format.formatter -> finding -> unit
