lib/topoverify/verifier.mli: Format Iface Ipv4 Json Netcore Policy Prefix Topology
