lib/topoverify/verifier.ml: Config_ir Format Iface Ipv4 List Netcore Policy Prefix Printf Topology
