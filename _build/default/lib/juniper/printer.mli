(** Rendering the vendor-neutral IR as Junos configuration text.

    Vendor mapping notes (also in DESIGN.md):
    - Prefix lists whose entries are all exact permits become
      [policy-options prefix-list] definitions and are referenced by name;
      lists with ge/le ranges or deny entries have no Junos prefix-list
      equivalent (the crux of the paper's "ge 24" issue), so their use sites
      are compiled through the symbolic prefix-space engine into equivalent
      pure-permit [route-filter] lines.
    - [set community] actions become named community definitions plus
      [community add]/[community set]/[community delete] then-clauses.
    - BGP network statements are rendered as
      [routing-options { announce { <prefix>; } }] — a documented stand-in
      for the direct-route origination policy real Junos would use.
    - Redistributions are not expressible directly; {!Translate.of_cisco_ir}
      folds them into export policies before printing. Any left in the IR
      are dropped with a [#] comment marker. *)

val print : Policy.Config_ir.t -> string

val route_filters_of_prefix_list : Policy.Prefix_list.t -> (string * string) list
(** [(prefix, modifier)] pairs, e.g. [("1.2.3.0/24", "prefix-length-range /25-/30")].
    Exposed for tests. *)

val community_def_name : Netcore.Community.t list -> string
(** The synthesized [policy-options community] name for a member set. *)
