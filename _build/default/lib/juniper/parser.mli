(** Tolerant parser for the Junos dialect: statement tree → vendor-neutral
    IR plus located diagnostics, mirroring Batfish's Juniper front end.

    Targeted diagnostics include the paper's Table 2 cases: a BGP process
    with neither [routing-options autonomous-system] nor per-neighbor
    [local-as] ("Missing BGP local-as attribute"), and the invalid
    [1.2.3.0/24-32] prefix-list shorthand GPT-4 invents for Cisco's
    [ge]/[le] ranges. *)

val parse : string -> Policy.Config_ir.t * Netcore.Diag.t list
val parse_clean : string -> (Policy.Config_ir.t, Netcore.Diag.t list) result
