open Netcore
open Policy

let check (c : Config_ir.t) =
  let diags = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> diags := Diag.warning s :: !diags) fmt in
  List.iter
    (fun missing -> warn "reference to undefined %s" missing)
    (Config_ir.undefined_references c);
  (match c.bgp with
  | None -> ()
  | Some b ->
      List.iter
        (fun (n : Config_ir.neighbor) ->
          if n.remote_as <= 0 then
            warn "neighbor %s has no peer-as" (Ipv4.to_string n.addr))
        b.neighbors;
      if b.redistributions <> [] then
        warn
          "redistribution statements are not expressible in Junos; fold them into \
           export policies (Translate.of_cisco_ir)");
  List.rev !diags
