open Netcore
open Policy

let leaf ?(line = 0) keywords = { Ast.keywords; children = None; line }
let block ?(line = 0) keywords children = { Ast.keywords; children = Some children; line }

(* ------------------------------------------------------------------ *)
(* Prefix lists -> route-filter lines                                  *)
(* ------------------------------------------------------------------ *)

let is_exact_permit_list (l : Prefix_list.t) =
  List.for_all
    (fun (e : Prefix_list.entry) ->
      e.action = Action.Permit && Prefix_range.is_exact e.range)
    l.entries

let len_runs lens =
  let rec runs acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some r -> r :: acc)
    | n :: rest -> (
        match cur with
        | Some (lo, hi) when n = hi + 1 -> runs acc (Some (lo, n)) rest
        | Some r -> runs (r :: acc) (Some (n, n)) rest
        | None -> runs acc (Some (n, n)) rest)
  in
  runs [] None (Symbolic.Len_set.to_list lens)

let modifier_of_run ~base_len (lo, hi) =
  if lo = base_len && hi = base_len then "exact"
  else if lo = base_len && hi = 32 then "orlonger"
  else if lo = base_len then Printf.sprintf "upto /%d" hi
  else Printf.sprintf "prefix-length-range /%d-/%d" lo hi

let route_filters_of_prefix_list l =
  let space = Symbolic.Guard.compile_prefix_list l in
  List.concat_map
    (fun (a : Symbolic.Prefix_space.atom) ->
      let base_len = Prefix.len a.base in
      List.map
        (fun run -> (Prefix.to_string a.base, modifier_of_run ~base_len run))
        (len_runs a.lens))
    (Symbolic.Prefix_space.atoms space)

(* ------------------------------------------------------------------ *)
(* Community names                                                     *)
(* ------------------------------------------------------------------ *)

let community_def_name comms =
  "COMM-"
  ^ String.concat "-"
      (List.map
         (fun c ->
           let s = Community.to_string c in
           String.map (fun ch -> if ch = ':' then '-' else ch) s)
         comms)

(* ------------------------------------------------------------------ *)
(* Policy statements                                                   *)
(* ------------------------------------------------------------------ *)

type defs = {
  mutable communities : (string * Community.t list) list;
  mutable warnings : string list;
}

let register_community defs name members =
  if not (List.mem_assoc name defs.communities) then
    defs.communities <- defs.communities @ [ (name, members) ]

let from_lines (c : Config_ir.t) defs = function
  | Route_map.Match_prefix_list n -> (
      match Config_ir.find_prefix_list c n with
      | Some l when is_exact_permit_list l -> [ leaf [ "prefix-list"; n ] ]
      | Some l ->
          List.map
            (fun (p, m) ->
              leaf (("route-filter" :: p :: String.split_on_char ' ' m)))
            (route_filters_of_prefix_list l)
      | None -> [ leaf [ "prefix-list"; n ] ])
  | Route_map.Match_community_list n -> (
      match Config_ir.find_community_list c n with
      | Some l -> (
          match l.Community_list.entries with
          | [ e ] when e.Community_list.action = Action.Permit ->
              register_community defs n e.Community_list.communities;
              [ leaf [ "community"; n ] ]
          | entries ->
              (* OR across entries: one named community per entry, all cited
                 in a single bracketed from clause. *)
              let names =
                List.mapi
                  (fun i (e : Community_list.entry) ->
                    let name = Printf.sprintf "%s-%d" n (i + 1) in
                    register_community defs name e.Community_list.communities;
                    name)
                  entries
              in
              [ leaf ("community" :: names) ])
      | None -> [ leaf [ "community"; n ] ])
  | Route_map.Match_as_path n -> [ leaf [ "as-path"; n ] ]
  | Route_map.Match_source_protocol s ->
      [ leaf [ "protocol"; Route.source_to_string s ] ]
  | Route_map.Match_med m -> [ leaf [ "metric"; string_of_int m ] ]
  | Route_map.Match_tag t -> [ leaf [ "tag"; string_of_int t ] ]

let then_lines defs (e : Route_map.entry) =
  let set_line = function
    | Route_map.Set_med m -> [ leaf [ "metric"; string_of_int m ] ]
    | Route_map.Set_local_pref p -> [ leaf [ "local-preference"; string_of_int p ] ]
    | Route_map.Set_community { communities; additive } ->
        let name = community_def_name communities in
        register_community defs name communities;
        [ leaf [ "community"; (if additive then "add" else "set"); name ] ]
    | Route_map.Set_community_delete n -> [ leaf [ "community"; "delete"; n ] ]
    | Route_map.Set_next_hop a -> [ leaf [ "next-hop"; Ipv4.to_string a ] ]
    | Route_map.Set_as_path_prepend asns ->
        [ leaf [ "as-path-prepend"; String.concat " " (List.map string_of_int asns) ] ]
  in
  List.concat_map set_line e.sets
  @ [ leaf [ (match e.action with Action.Permit -> "accept" | Action.Deny -> "reject") ] ]

let term_of_entry (c : Config_ir.t) defs (e : Route_map.entry) =
  let froms = List.concat_map (from_lines c defs) e.matches in
  let body =
    (if froms = [] then [] else [ block [ "from" ] froms ])
    @ [ block [ "then" ] (then_lines defs e) ]
  in
  block [ "term"; Printf.sprintf "t%d" e.seq ] body

let policy_statement c defs (m : Route_map.t) =
  block [ "policy-statement"; m.name ] (List.map (term_of_entry c defs) m.entries)

(* ------------------------------------------------------------------ *)
(* Top-level sections                                                  *)
(* ------------------------------------------------------------------ *)

let firewall_section (c : Config_ir.t) =
  if c.Config_ir.acls = [] then []
  else
    let term (e : Acl.entry) =
      let froms =
        (match e.Acl.proto with
        | Acl.Any_proto -> []
        | Acl.Proto p -> [ leaf [ "protocol"; Packet.proto_to_string p ] ])
        @ (if Prefix.equal e.Acl.src Prefix.default then []
           else [ leaf [ "source-address"; Prefix.to_string e.Acl.src ] ])
        @ (if Prefix.equal e.Acl.dst Prefix.default then []
           else [ leaf [ "destination-address"; Prefix.to_string e.Acl.dst ] ])
        @
        match e.Acl.dst_port with
        | Acl.Any_port -> []
        | Acl.Eq p -> [ leaf [ "destination-port"; string_of_int p ] ]
        | Acl.Port_range (lo, hi) ->
            [ leaf [ "destination-port"; Printf.sprintf "%d-%d" lo hi ] ]
      in
      let action =
        match e.Acl.action with Action.Permit -> "accept" | Action.Deny -> "discard"
      in
      block
        [ "term"; Printf.sprintf "t%d" e.Acl.seq ]
        ((if froms = [] then [] else [ block [ "from" ] froms ])
        @ [ block [ "then" ] [ leaf [ action ] ] ])
    in
    let filter (a : Acl.t) =
      block [ "filter"; a.Acl.name ] (List.map term a.Acl.entries)
    in
    [ block [ "firewall" ] [ block [ "family"; "inet" ] (List.map filter c.Config_ir.acls) ] ]

let interfaces_section (c : Config_ir.t) =
  let iface_node (i : Config_ir.interface) =
    let phys = Iface.junos_name i.iface in
    let phys =
      match String.index_opt phys '.' with
      | Some idx -> String.sub phys 0 idx
      | None -> phys
    in
    let filter_attach =
      let ins = match i.acl_in with Some n -> [ leaf [ "input"; n ] ] | None -> [] in
      let outs = match i.acl_out with Some n -> [ leaf [ "output"; n ] ] | None -> [] in
      if ins = [] && outs = [] then [] else [ block [ "filter" ] (ins @ outs) ]
    in
    let family =
      let addr =
        match i.address with
        | Some (a, len) ->
            [ leaf [ "address"; Printf.sprintf "%s/%d" (Ipv4.to_string a) len ] ]
        | None -> []
      in
      if addr = [] && filter_attach = [] then []
      else [ block [ "family"; "inet" ] (filter_attach @ addr) ]
    in
    let unit = block [ "unit"; "0" ] family in
    let body =
      (match i.description with
      | Some d -> [ leaf [ "description"; d ] ]
      | None -> [])
      @ (if i.shutdown then [ leaf [ "disable" ] ] else [])
      @ [ unit ]
    in
    block [ phys ] body
  in
  if c.interfaces = [] then [] else [ block [ "interfaces" ] (List.map iface_node c.interfaces) ]

let routing_options_section (c : Config_ir.t) =
  let statics =
    if c.statics = [] then []
    else
      [
        block [ "static" ]
          (List.map
             (fun (r : Config_ir.static_route) ->
               block
                 [ "route"; Prefix.to_string r.Config_ir.destination ]
                 [ leaf [ "next-hop"; Ipv4.to_string r.Config_ir.next_hop ] ])
             c.statics);
      ]
  in
  let body =
    statics
    @
    (match c.bgp with
    | Some b ->
        (match b.router_id with
        | Some r -> [ leaf [ "router-id"; Ipv4.to_string r ] ]
        | None -> [])
        @ (if b.asn > 0 then [ leaf [ "autonomous-system"; string_of_int b.asn ] ] else [])
        @
        if b.networks = [] then []
        else
          [
            block [ "announce" ]
              (List.map (fun p -> leaf [ Prefix.to_string p ]) b.networks);
          ]
    | None -> [])
  in
  if body = [] then [] else [ block [ "routing-options" ] body ]

let bgp_section (c : Config_ir.t) =
  match c.bgp with
  | None -> []
  | Some b ->
      let group (n : Config_ir.neighbor) =
        let name =
          "PEER-"
          ^ String.map (fun ch -> if ch = '.' then '-' else ch) (Ipv4.to_string n.addr)
        in
        let neighbor_body =
          (if n.remote_as > 0 then [ leaf [ "peer-as"; string_of_int n.remote_as ] ] else [])
          @ (match n.local_as with
            | Some a -> [ leaf [ "local-as"; string_of_int a ] ]
            | None -> [])
          @ (match n.description with
            | Some d -> [ leaf [ "description"; d ] ]
            | None -> [])
          @ (match n.import_policy with
            | Some p -> [ leaf [ "import"; p ] ]
            | None -> [])
          @
          match n.export_policy with
          | Some p -> [ leaf [ "export"; p ] ]
          | None -> []
        in
        block [ "group"; name ]
          [
            leaf [ "type"; "external" ];
            block [ "neighbor"; Ipv4.to_string n.addr ] neighbor_body;
          ]
      in
      [ block [ "bgp" ] (List.map group b.neighbors) ]

let ospf_section (c : Config_ir.t) =
  match c.ospf with
  | None -> []
  | Some o ->
      let areas =
        List.sort_uniq Int.compare
          (List.map (fun (oi : Config_ir.ospf_interface) -> oi.area) o.interfaces)
      in
      let area_node area =
        let ifaces =
          List.filter (fun (oi : Config_ir.ospf_interface) -> oi.area = area) o.interfaces
        in
        let iface_node (oi : Config_ir.ospf_interface) =
          let body =
            (match oi.cost with
            | Some m -> [ leaf [ "metric"; string_of_int m ] ]
            | None -> [])
            @ if oi.passive then [ leaf [ "passive" ] ] else []
          in
          block [ "interface"; Iface.junos_name oi.iface ] body
        in
        block [ "area"; Printf.sprintf "0.0.0.%d" area ] (List.map iface_node ifaces)
      in
      if areas = [] then [] else [ block [ "ospf" ] (List.map area_node areas) ]

let policy_options_section (c : Config_ir.t) defs =
  let prefix_lists =
    List.filter_map
      (fun (l : Prefix_list.t) ->
        if is_exact_permit_list l then
          Some
            (block [ "prefix-list"; l.name ]
               (List.map
                  (fun (e : Prefix_list.entry) ->
                    leaf [ Prefix.to_string (Prefix_range.base e.range) ])
                  l.entries))
        else None)
      c.prefix_lists
  in
  let statements = List.map (policy_statement c defs) c.route_maps in
  let communities =
    List.map
      (fun (name, members) ->
        leaf
          (("community" :: name :: "members"
           :: List.map Community.to_string members)))
      defs.communities
  in
  let as_paths =
    List.concat_map
      (fun (l : As_path_list.t) ->
        match
          List.find_opt (fun (e : As_path_list.entry) -> e.action = Action.Permit) l.entries
        with
        | Some e -> [ leaf [ "as-path"; l.name; e.regex ] ]
        | None -> [])
      c.as_path_lists
  in
  (* Definitions precede the statements that use them. *)
  let body = prefix_lists @ communities @ as_paths @ statements in
  if body = [] then [] else [ block [ "policy-options" ] body ]

let print (c : Config_ir.t) =
  let defs = { communities = []; warnings = [] } in
  (* Pre-register named community lists referenced in delete actions. *)
  List.iter
    (fun (m : Route_map.t) ->
      List.iter
        (fun (e : Route_map.entry) ->
          List.iter
            (function
              | Route_map.Set_community_delete n -> (
                  match Config_ir.find_community_list c n with
                  | Some { Community_list.entries = { Community_list.communities; _ } :: _; _ } ->
                      register_community defs n communities
                  | _ -> ())
              | _ -> ())
            e.Route_map.sets)
        m.Route_map.entries)
    c.route_maps;
  let system = [ block [ "system" ] [ leaf [ "host-name"; c.hostname ] ] ] in
  let policy = policy_options_section c defs in
  let protocols =
    let body = bgp_section c @ ospf_section c in
    if body = [] then [] else [ block [ "protocols" ] body ]
  in
  let dropped =
    match c.bgp with
    | Some b when b.redistributions <> [] ->
        "# note: redistributions are not expressible in this dialect; fold them \
         into export policies with Translate.of_cisco_ir\n"
    | _ -> ""
  in
  dropped
  ^ Ast.render
      (system @ interfaces_section c @ routing_options_section c @ firewall_section c
      @ protocols @ policy)
