(** The reference Cisco → Juniper translation at the IR level.

    This is the "correct translation" oracle: the simulated GPT-4 starts
    from its output and the fault model perturbs it. It performs the two
    restructurings real Junos requires and the paper calls out:

    - Redistribution into BGP is folded into the neighbors' export policies
      ("Juniper typically does this using the same routing policies that
      control importing and exporting BGP routes"): every original export
      term is scoped with [from protocol bgp] and one term per
      redistribution (carrying the redistribution route-map's entries scoped
      to its source protocol) is appended.
    - OSPF [network ... area] statements become per-interface area
      memberships, with the effective link cost made explicit (Cisco and
      Junos have different defaults, so leaving it implicit changes
      behaviour — the Table 1 "OSPF link cost" example). *)

val cisco_default_ospf_cost : Netcore.Iface.t -> int
(** 1 for loopbacks, 10 for Ethernet-class interfaces. *)

val junos_default_ospf_metric : Netcore.Iface.t -> int
(** 0 for loopbacks, 1 otherwise. *)

val of_cisco_ir : Policy.Config_ir.t -> Policy.Config_ir.t
(** Total; configurations without BGP/OSPF pass through mostly unchanged. *)
