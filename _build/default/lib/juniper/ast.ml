open Netcore

type node = {
  keywords : string list;
  children : node list option;
  line : int;
}

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token = Word of string | Lbrace | Rbrace | Semi | Lbracket | Rbracket

let tokenize text =
  let toks = ref [] and diags = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let buf = Buffer.create 16 in
  let flush_word () =
    if Buffer.length buf > 0 then (
      toks := (Word (Buffer.contents buf), !line) :: !toks;
      Buffer.clear buf)
  in
  let rec go i in_comment =
    if i >= n then flush_word ()
    else
      let c = text.[i] in
      if c = '\n' then (
        if not in_comment then flush_word ();
        incr line;
        go (i + 1) false)
      else if in_comment then go (i + 1) true
      else
        match c with
        | '#' ->
            flush_word ();
            go (i + 1) true
        | ' ' | '\t' | '\r' ->
            flush_word ();
            go (i + 1) false
        | '{' ->
            flush_word ();
            toks := (Lbrace, !line) :: !toks;
            go (i + 1) false
        | '}' ->
            flush_word ();
            toks := (Rbrace, !line) :: !toks;
            go (i + 1) false
        | ';' ->
            flush_word ();
            toks := (Semi, !line) :: !toks;
            go (i + 1) false
        | '[' ->
            flush_word ();
            toks := (Lbracket, !line) :: !toks;
            go (i + 1) false
        | ']' ->
            flush_word ();
            toks := (Rbracket, !line) :: !toks;
            go (i + 1) false
        | '"' ->
            flush_word ();
            (* Quoted string: consumed verbatim (without the quotes). *)
            let rec str j =
              if j >= n then (
                diags := Diag.error ~line:!line "unterminated string" :: !diags;
                j)
              else if text.[j] = '"' then (
                toks := (Word (Buffer.contents buf), !line) :: !toks;
                Buffer.clear buf;
                j + 1)
              else (
                if text.[j] = '\n' then incr line;
                Buffer.add_char buf text.[j];
                str (j + 1))
            in
            go (str (i + 1)) false
        | c ->
            Buffer.add_char buf c;
            go (i + 1) false
  in
  go 0 false;
  (List.rev !toks, List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Tree builder                                                        *)
(* ------------------------------------------------------------------ *)

let parse text =
  let toks, tok_diags = tokenize text in
  let diags = ref tok_diags in
  let err line fmt =
    Printf.ksprintf (fun s -> diags := !diags @ [ Diag.error ~line s ]) fmt
  in
  (* [stmts] parses a statement list until Rbrace or end of input, returning
     the nodes and the remaining tokens (with the closing Rbrace consumed by
     the caller's recursion). *)
  let rec stmts ~top acc toks =
    match toks with
    | [] ->
        if not top then err 0 "unbalanced braces: missing '}'";
        (List.rev acc, [])
    | (Rbrace, _) :: rest -> (List.rev acc, rest)
    | (Semi, line) :: rest ->
        err line "stray ';'";
        stmts ~top acc rest
    | (Lbrace, line) :: rest ->
        err line "block without a keyword";
        let _, rest = stmts ~top:false [] rest in
        stmts ~top acc rest
    | ((Word _ | Lbracket | Rbracket), line) :: _ ->
        let rec words ws toks =
          match toks with
          | (Word w, _) :: rest -> words (w :: ws) rest
          | (Lbracket, _) :: rest -> words ws rest
          | (Rbracket, _) :: rest -> words ws rest
          | rest -> (List.rev ws, rest)
        in
        let ws, rest = words [] toks in
        (match rest with
        | (Semi, _) :: rest ->
            stmts ~top ({ keywords = ws; children = None; line } :: acc) rest
        | (Lbrace, _) :: rest ->
            let kids, rest = stmts ~top:false [] rest in
            stmts ~top ({ keywords = ws; children = Some kids; line } :: acc) rest
        | (Rbrace, _) :: _ | [] ->
            err line "statement '%s' not terminated by ';' or a block"
              (String.concat " " ws);
            stmts ~top ({ keywords = ws; children = None; line } :: acc) rest
        | ((Word _ | Lbracket | Rbracket), _) :: _ ->
            (* unreachable: [words] consumed all leading words/brackets *)
            stmts ~top acc rest)
  in
  let nodes, leftover = stmts ~top:true [] toks in
  (match leftover with
  | [] -> ()
  | _ -> err 0 "unbalanced braces: extra '}'");
  (nodes, !diags)

let find head nodes =
  List.find_opt (fun n -> match n.keywords with w :: _ -> w = head | [] -> false) nodes

let find_all head nodes =
  List.filter (fun n -> match n.keywords with w :: _ -> w = head | [] -> false) nodes

let children n = Option.value ~default:[] n.children

let needs_quotes w = String.contains w ' '

let render nodes =
  let buf = Buffer.create 1024 in
  let rec go indent nodes =
    List.iter
      (fun n ->
        Buffer.add_string buf (String.make indent ' ');
        let ws =
          List.map (fun w -> if needs_quotes w then "\"" ^ w ^ "\"" else w) n.keywords
        in
        Buffer.add_string buf (String.concat " " ws);
        match n.children with
        | None -> Buffer.add_string buf ";\n"
        | Some kids ->
            Buffer.add_string buf " {\n";
            go (indent + 4) kids;
            Buffer.add_string buf (String.make indent ' ');
            Buffer.add_string buf "}\n")
      nodes
  in
  go 0 nodes;
  Buffer.contents buf
