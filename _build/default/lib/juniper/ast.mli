(** Generic Junos syntax tree: the curly-brace statement structure, prior to
    any semantic interpretation.

    A statement is a list of keywords followed either by [;] (a leaf) or by a
    braced block of sub-statements. Bracketed value lists ([members [ a b ]])
    are flattened into the keyword list with the brackets dropped. *)

type node = {
  keywords : string list;
  children : node list option;  (** [None] for leaf statements. *)
  line : int;
}

val parse : string -> node list * Netcore.Diag.t list
(** Tokenize and build the statement tree. Unbalanced braces, missing
    semicolons and stray tokens are reported and recovered from. *)

val find : string -> node list -> node option
(** First node whose head keyword matches. *)

val find_all : string -> node list -> node list

val children : node -> node list
(** Empty list for leaves. *)

val render : node list -> string
(** Pretty-print a tree back to Junos syntax (4-space indent). *)
