open Netcore
open Policy

let cisco_default_ospf_cost iface = if Iface.is_loopback iface then 1 else 10
let junos_default_ospf_metric iface = if Iface.is_loopback iface then 0 else 1

(* Scope every entry of a map with an extra condition, keeping actions and
   sets; deny entries are scoped too (a deny about bgp routes must not
   swallow ospf routes that Cisco would never have shown it). *)
let scope_entries cond entries =
  List.map
    (fun (e : Route_map.entry) ->
      { e with Route_map.matches = cond :: e.matches })
    entries

let renumber ~start entries =
  List.mapi (fun i (e : Route_map.entry) -> { e with Route_map.seq = start + (i * 10) }) entries

let fold_redistributions (c : Config_ir.t) (b : Config_ir.bgp) =
  if b.redistributions = [] then (c, b)
  else
    let redistribution_entries =
      List.concat_map
        (fun (r : Config_ir.redistribution) ->
          let scope = Route_map.Match_source_protocol r.from_protocol in
          match r.policy with
          | None -> [ Route_map.entry ~matches:[ scope ] 0 ]
          | Some name -> (
              match Config_ir.find_route_map c name with
              | Some m -> scope_entries scope m.Route_map.entries
              | None ->
                  (* Dangling redistribution policy: redistribute nothing,
                     matching IOS behaviour for an undefined route-map being
                     treated as deny-all in redistribution context. *)
                  []))
        b.redistributions
    in
    let rewrite_export (m : Route_map.t) =
      let scoped =
        scope_entries (Route_map.Match_source_protocol Route.Bgp) m.Route_map.entries
      in
      let all = renumber ~start:10 (scoped @ redistribution_entries) in
      Route_map.make m.Route_map.name all
    in
    let export_names =
      List.filter_map (fun (n : Config_ir.neighbor) -> n.export_policy) b.neighbors
      |> List.sort_uniq String.compare
    in
    let route_maps =
      List.map
        (fun (m : Route_map.t) ->
          if List.mem m.Route_map.name export_names then rewrite_export m else m)
        c.route_maps
    in
    (* Neighbors without an export policy still leak redistributed routes in
       IOS; give them a synthesized export policy expressing that. *)
    let needs_synth =
      List.exists (fun (n : Config_ir.neighbor) -> n.export_policy = None) b.neighbors
    in
    let synth_name = "EXPORT-ALL" in
    let route_maps =
      if needs_synth then
        route_maps
        @ [
            Route_map.make synth_name
              (renumber ~start:10
                 (Route_map.entry ~matches:[ Route_map.Match_source_protocol Route.Bgp ] 0
                 :: redistribution_entries));
          ]
      else route_maps
    in
    let neighbors =
      List.map
        (fun (n : Config_ir.neighbor) ->
          match n.export_policy with
          | Some _ -> n
          | None -> { n with Config_ir.export_policy = Some synth_name })
        b.neighbors
    in
    ({ c with Config_ir.route_maps }, { b with Config_ir.neighbors; redistributions = [] })

let translate_ospf (c : Config_ir.t) (o : Config_ir.ospf) =
  (* An interface belongs to the area of the first network statement that
     covers its address; interfaces covered by no statement stay out. *)
  let area_of addr =
    List.find_map
      (fun (p, area) -> if Prefix.contains_addr p addr then Some area else None)
      o.networks
  in
  let member_interfaces =
    List.filter_map
      (fun (i : Config_ir.interface) ->
        match i.address with
        | Some (addr, _) when not i.shutdown -> (
            match area_of addr with
            | Some area -> Some (i.iface, area)
            | None -> None)
        | _ -> None)
      c.interfaces
  in
  let explicit iface =
    List.find_opt
      (fun (oi : Config_ir.ospf_interface) -> Iface.equal oi.iface iface)
      o.interfaces
  in
  let interfaces =
    List.map
      (fun (iface, area) ->
        let prior = explicit iface in
        let cost =
          match Option.bind prior (fun (oi : Config_ir.ospf_interface) -> oi.cost) with
          | Some cost -> cost
          | None -> cisco_default_ospf_cost iface
        in
        let passive =
          match prior with Some oi -> oi.Config_ir.passive | None -> false
        in
        { Config_ir.iface; cost = Some cost; passive; area })
      member_interfaces
  in
  let interfaces =
    List.sort
      (fun (a : Config_ir.ospf_interface) (b : Config_ir.ospf_interface) ->
        Iface.compare a.iface b.iface)
      interfaces
  in
  { o with Config_ir.networks = []; interfaces; redistributions = [] }

let of_cisco_ir (c : Config_ir.t) =
  let c, bgp =
    match c.bgp with
    | None -> (c, None)
    | Some b ->
        let c, b = fold_redistributions c b in
        (* Per-neighbor local-as defaults to the process AS explicitly, the
           attribute whose omission Batfish flags. *)
        let neighbors =
          List.map
            (fun (n : Config_ir.neighbor) ->
              match n.local_as with
              | Some _ -> n
              | None -> { n with Config_ir.local_as = Some b.asn })
            b.neighbors
        in
        (c, Some { b with Config_ir.neighbors })
  in
  let ospf = Option.map (translate_ospf c) c.ospf in
  { c with Config_ir.bgp = bgp; ospf }
