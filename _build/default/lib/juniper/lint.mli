(** Semantic lint on a parsed Junos configuration. *)

val check : Policy.Config_ir.t -> Netcore.Diag.t list
(** Reports dangling references, neighbors without peer-as, policies
    attached nowhere, and route maps containing redistribution statements
    (inexpressible in this dialect — see {!Translate}). *)
