lib/juniper/lint.mli: Netcore Policy
