lib/juniper/translate.ml: Config_ir Iface List Netcore Option Policy Prefix Route Route_map String
