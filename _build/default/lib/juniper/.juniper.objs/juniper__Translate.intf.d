lib/juniper/translate.mli: Netcore Policy
