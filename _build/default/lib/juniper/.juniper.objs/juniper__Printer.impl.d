lib/juniper/printer.ml: Acl Action As_path_list Ast Community Community_list Config_ir Iface Int Ipv4 List Netcore Packet Policy Prefix Prefix_list Prefix_range Printf Route Route_map String Symbolic
