lib/juniper/parser.mli: Netcore Policy
