lib/juniper/ast.mli: Netcore
