lib/juniper/printer.mli: Netcore Policy
