lib/juniper/lint.ml: Config_ir Diag Ipv4 List Netcore Policy Printf
