lib/juniper/ast.ml: Buffer Diag List Netcore Option Printf String
