lib/campion/differ.mli: Action Config_ir Format Iface Ipv4 Netcore Packet Policy Prefix Route
