lib/campion/differ.ml: Acl Action Config_ir Eval Format Iface Ipv4 Juniper List Netcore Option Packet Policy Prefix Printf Route Route_map String Symbolic
