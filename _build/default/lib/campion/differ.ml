open Netcore
open Policy

type direction = Import | Export

type structural =
  | Missing_neighbor of { addr : Ipv4.t; missing_in_translation : bool }
  | Missing_acl_attachment of {
      iface : Iface.t;
      direction : direction;
      missing_in_translation : bool;
    }
  | Missing_policy of {
      neighbor : Ipv4.t;
      direction : direction;
      missing_in_translation : bool;
    }
  | Missing_network of { network : Prefix.t; missing_in_translation : bool }
  | Missing_bgp_process of { missing_in_translation : bool }
  | Missing_ospf_interface of { iface : Iface.t; missing_in_translation : bool }

type attribute = {
  component : string;
  translated_component : string;
  attribute : string;
  original_value : string;
  translated_value : string;
}

type behavior = {
  policy : string;
  neighbor : Ipv4.t option;
  direction : direction;
  example : Route.t;
  original_action : Action.t;
  translated_action : Action.t;
  is_redistribution : bool;
  effect_detail : (string * string * string) list;
}

type acl_behavior = {
  acl : string;
  iface : Iface.t;
  acl_direction : direction;
  packet : Packet.t;
  original_packet_action : Action.t;
  translated_packet_action : Action.t;
}

type finding =
  | Structural of structural
  | Attribute of attribute
  | Behavior of behavior
  | Acl_behavior of acl_behavior

let direction_to_string = function Import -> "import" | Export -> "export"

(* ------------------------------------------------------------------ *)
(* Structural comparison                                               *)
(* ------------------------------------------------------------------ *)

let neighbors_of (c : Config_ir.t) =
  match c.Config_ir.bgp with None -> [] | Some b -> b.Config_ir.neighbors

let networks_of (c : Config_ir.t) =
  match c.Config_ir.bgp with None -> [] | Some b -> b.Config_ir.networks

let ospf_interfaces_of (c : Config_ir.t) =
  match c.Config_ir.ospf with None -> [] | Some o -> o.Config_ir.interfaces

let structural_findings ~original ~translation =
  let fs = ref [] in
  let add f = fs := Structural f :: !fs in
  (match (original.Config_ir.bgp, translation.Config_ir.bgp) with
  | Some _, None -> add (Missing_bgp_process { missing_in_translation = true })
  | None, Some _ -> add (Missing_bgp_process { missing_in_translation = false })
  | _ -> ());
  let no = neighbors_of original and nt = neighbors_of translation in
  let find list addr =
    List.find_opt (fun (n : Config_ir.neighbor) -> Ipv4.equal n.Config_ir.addr addr) list
  in
  List.iter
    (fun (n : Config_ir.neighbor) ->
      match find nt n.Config_ir.addr with
      | None ->
          add (Missing_neighbor { addr = n.Config_ir.addr; missing_in_translation = true })
      | Some n' ->
          let policy_presence dir p p' =
            match (p, p') with
            | Some _, None ->
                add
                  (Missing_policy
                     {
                       neighbor = n.Config_ir.addr;
                       direction = dir;
                       missing_in_translation = true;
                     })
            | None, Some _ ->
                add
                  (Missing_policy
                     {
                       neighbor = n.Config_ir.addr;
                       direction = dir;
                       missing_in_translation = false;
                     })
            | _ -> ()
          in
          policy_presence Import n.Config_ir.import_policy n'.Config_ir.import_policy;
          policy_presence Export n.Config_ir.export_policy n'.Config_ir.export_policy)
    no;
  List.iter
    (fun (n : Config_ir.neighbor) ->
      if find no n.Config_ir.addr = None then
        add (Missing_neighbor { addr = n.Config_ir.addr; missing_in_translation = false }))
    nt;
  let nets_o = networks_of original and nets_t = networks_of translation in
  List.iter
    (fun p ->
      if not (List.exists (Prefix.equal p) nets_t) then
        add (Missing_network { network = p; missing_in_translation = true }))
    nets_o;
  List.iter
    (fun p ->
      if not (List.exists (Prefix.equal p) nets_o) then
        add (Missing_network { network = p; missing_in_translation = false }))
    nets_t;
  let oi_o = ospf_interfaces_of original and oi_t = ospf_interfaces_of translation in
  let has list iface =
    List.exists (fun (oi : Config_ir.ospf_interface) -> Iface.equal oi.Config_ir.iface iface) list
  in
  List.iter
    (fun (oi : Config_ir.ospf_interface) ->
      if not (has oi_t oi.Config_ir.iface) then
        add (Missing_ospf_interface { iface = oi.Config_ir.iface; missing_in_translation = true }))
    oi_o;
  List.iter
    (fun (oi : Config_ir.ospf_interface) ->
      if not (has oi_o oi.Config_ir.iface) then
        add
          (Missing_ospf_interface { iface = oi.Config_ir.iface; missing_in_translation = false }))
    oi_t;
  (* ACL attachments per interface and direction. *)
  List.iter
    (fun (i : Config_ir.interface) ->
      match Config_ir.find_interface translation i.Config_ir.iface with
      | None -> ()
      | Some i' ->
          let attach dir a a' =
            match (a, a') with
            | Some _, None ->
                add
                  (Missing_acl_attachment
                     { iface = i.Config_ir.iface; direction = dir; missing_in_translation = true })
            | None, Some _ ->
                add
                  (Missing_acl_attachment
                     {
                       iface = i.Config_ir.iface;
                       direction = dir;
                       missing_in_translation = false;
                     })
            | _ -> ()
          in
          attach Import i.Config_ir.acl_in i'.Config_ir.acl_in;
          attach Export i.Config_ir.acl_out i'.Config_ir.acl_out)
    original.Config_ir.interfaces;
  List.rev !fs

(* ------------------------------------------------------------------ *)
(* Attribute comparison                                                *)
(* ------------------------------------------------------------------ *)

let attribute_findings ~original ~translation =
  let fs = ref [] in
  let add component translated_component attribute original_value translated_value =
    fs :=
      Attribute { component; translated_component; attribute; original_value; translated_value }
      :: !fs
  in
  (match (original.Config_ir.bgp, translation.Config_ir.bgp) with
  | Some bo, Some bt ->
      if bo.Config_ir.asn <> bt.Config_ir.asn && bt.Config_ir.asn > 0 then
        add "BGP process" "BGP process" "local AS"
          (string_of_int bo.Config_ir.asn)
          (string_of_int bt.Config_ir.asn);
      (match (bo.Config_ir.router_id, bt.Config_ir.router_id) with
      | Some a, Some b when not (Ipv4.equal a b) ->
          add "BGP process" "BGP process" "router id" (Ipv4.to_string a) (Ipv4.to_string b)
      | _ -> ());
      List.iter
        (fun (n : Config_ir.neighbor) ->
          match Config_ir.find_neighbor bt n.Config_ir.addr with
          | Some n' when n'.Config_ir.remote_as <> n.Config_ir.remote_as ->
              add
                (Printf.sprintf "BGP neighbor %s" (Ipv4.to_string n.Config_ir.addr))
                (Printf.sprintf "BGP neighbor %s" (Ipv4.to_string n.Config_ir.addr))
                "remote AS"
                (string_of_int n.Config_ir.remote_as)
                (string_of_int n'.Config_ir.remote_as)
          | _ -> ())
        bo.Config_ir.neighbors
  | _ -> ());
  (* Interface addresses. *)
  List.iter
    (fun (i : Config_ir.interface) ->
      match Config_ir.find_interface translation i.Config_ir.iface with
      | Some i' when i.Config_ir.address <> i'.Config_ir.address ->
          let show = function
            | Some (a, l) -> Printf.sprintf "%s/%d" (Ipv4.to_string a) l
            | None -> "(none)"
          in
          add
            (Printf.sprintf "interface %s" (Iface.cisco_name i.Config_ir.iface))
            (Printf.sprintf "interface %s" (Iface.junos_name i.Config_ir.iface))
            "address"
            (show i.Config_ir.address)
            (show i'.Config_ir.address)
      | _ -> ())
    original.Config_ir.interfaces;
  (* OSPF per-interface settings on aligned interfaces; translation-side
     defaults differ from Cisco's, which is the Table 1 example. *)
  let oi_t = ospf_interfaces_of translation in
  List.iter
    (fun (oi : Config_ir.ospf_interface) ->
      match
        List.find_opt
          (fun (x : Config_ir.ospf_interface) -> Iface.equal x.Config_ir.iface oi.Config_ir.iface)
          oi_t
      with
      | None -> ()
      | Some oi' ->
          let cost_o =
            Option.value
              ~default:(Juniper.Translate.cisco_default_ospf_cost oi.Config_ir.iface)
              oi.Config_ir.cost
          in
          let cost_t =
            Option.value
              ~default:(Juniper.Translate.junos_default_ospf_metric oi'.Config_ir.iface)
              oi'.Config_ir.cost
          in
          if cost_o <> cost_t then
            add
              (Printf.sprintf "OSPF link for %s" (Iface.cisco_name oi.Config_ir.iface))
              (Iface.junos_name oi'.Config_ir.iface)
              "cost" (string_of_int cost_o) (string_of_int cost_t);
          if oi.Config_ir.passive <> oi'.Config_ir.passive then
            add
              (Printf.sprintf "OSPF link for %s" (Iface.cisco_name oi.Config_ir.iface))
              (Iface.junos_name oi'.Config_ir.iface)
              "passive interface"
              (string_of_bool oi.Config_ir.passive)
              (string_of_bool oi'.Config_ir.passive))
    (ospf_interfaces_of original);
  List.rev !fs

(* ------------------------------------------------------------------ *)
(* Behavior comparison                                                 *)
(* ------------------------------------------------------------------ *)

let policy_of (c : Config_ir.t) name =
  match Config_ir.find_route_map c name with
  | Some m -> m
  | None ->
      (* Dangling attachment: behave like "no policy" (permit all), which is
         also what the simulator does. Lint reports the dangling name. *)
      Route_map.permit_all name

let behavior_findings ~original ~translation =
  let env_o = Eval.env_of_config original and env_t = Eval.env_of_config translation in
  let fs = ref [] in
  let compare_policies direction neighbor name_o name_t =
    let m_o = policy_of original name_o and m_t = policy_of translation name_t in
    let diffs = Symbolic.Policy_diff.compare_maps ~env_a:env_o ~env_b:env_t m_o m_t in
    List.iter
      (fun (d : Symbolic.Policy_diff.difference) ->
        match d.Symbolic.Policy_diff.example with
        | None -> ()
        | Some example ->
            let effect_detail =
              match d.Symbolic.Policy_diff.kind with
              | Symbolic.Policy_diff.Action_mismatch -> []
              | Symbolic.Policy_diff.Effect_mismatch fields -> fields
            in
            fs :=
              Behavior
                {
                  policy = name_o;
                  neighbor = Some neighbor;
                  direction;
                  example;
                  original_action = d.Symbolic.Policy_diff.action_a;
                  translated_action = d.Symbolic.Policy_diff.action_b;
                  is_redistribution = example.Route.source <> Route.Bgp;
                  effect_detail;
                }
              :: !fs)
      diffs
  in
  (match (original.Config_ir.bgp, translation.Config_ir.bgp) with
  | Some bo, Some bt ->
      List.iter
        (fun (n : Config_ir.neighbor) ->
          match Config_ir.find_neighbor bt n.Config_ir.addr with
          | None -> ()
          | Some n' ->
              (match (n.Config_ir.import_policy, n'.Config_ir.import_policy) with
              | Some p, Some p' -> compare_policies Import n.Config_ir.addr p p'
              | _ -> ());
              (match (n.Config_ir.export_policy, n'.Config_ir.export_policy) with
              | Some p, Some p' -> compare_policies Export n.Config_ir.addr p p'
              | _ -> ()))
        bo.Config_ir.neighbors
  | _ -> ());
  List.rev !fs

(* ------------------------------------------------------------------ *)
(* ACL behavior comparison                                             *)
(* ------------------------------------------------------------------ *)

let acl_of (c : Config_ir.t) name =
  match Config_ir.find_acl c name with
  | Some a -> a
  | None -> Acl.make name []  (* dangling attachment: implicit deny-all *)

let acl_findings ~original ~translation =
  let fs = ref [] in
  List.iter
    (fun (i : Config_ir.interface) ->
      match Config_ir.find_interface translation i.Config_ir.iface with
      | None -> ()
      | Some i' ->
          let compare_attached dir a a' =
            match (a, a') with
            | Some name_o, Some name_t ->
                List.iter
                  (fun (d : Symbolic.Acl_diff.difference) ->
                    fs :=
                      Acl_behavior
                        {
                          acl = name_o;
                          iface = i.Config_ir.iface;
                          acl_direction = dir;
                          packet = d.Symbolic.Acl_diff.example;
                          original_packet_action = d.Symbolic.Acl_diff.action_a;
                          translated_packet_action = d.Symbolic.Acl_diff.action_b;
                        }
                      :: !fs)
                  (Symbolic.Acl_diff.compare_acls (acl_of original name_o)
                     (acl_of translation name_t))
            | _ -> ()
          in
          compare_attached Import i.Config_ir.acl_in i'.Config_ir.acl_in;
          compare_attached Export i.Config_ir.acl_out i'.Config_ir.acl_out)
    original.Config_ir.interfaces;
  List.rev !fs

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let compare ~original ~translation =
  (* Normalize the Cisco side so redistribution, OSPF area membership and
     default costs are expressed the same way on both sides. *)
  let original = Juniper.Translate.of_cisco_ir original in
  structural_findings ~original ~translation
  @ attribute_findings ~original ~translation
  @ behavior_findings ~original ~translation
  @ acl_findings ~original ~translation

let equivalent ~original ~translation = compare ~original ~translation = []

let finding_to_string = function
  | Structural s -> (
      let side b = if b then "the translation" else "the original" in
      match s with
      | Missing_neighbor { addr; missing_in_translation } ->
          Printf.sprintf "BGP neighbor %s is missing in %s" (Ipv4.to_string addr)
            (side missing_in_translation)
      | Missing_policy { neighbor; direction; missing_in_translation } ->
          Printf.sprintf "%s route map for BGP neighbor %s is missing in %s"
            (direction_to_string direction)
            (Ipv4.to_string neighbor)
            (side missing_in_translation)
      | Missing_network { network; missing_in_translation } ->
          Printf.sprintf "network %s is missing in %s" (Prefix.to_string network)
            (side missing_in_translation)
      | Missing_bgp_process { missing_in_translation } ->
          Printf.sprintf "the BGP process is missing in %s" (side missing_in_translation)
      | Missing_ospf_interface { iface; missing_in_translation } ->
          Printf.sprintf "OSPF on interface %s is missing in %s" (Iface.cisco_name iface)
            (side missing_in_translation)
      | Missing_acl_attachment { iface; direction; missing_in_translation } ->
          Printf.sprintf "the %s access list on interface %s is missing in %s"
            (direction_to_string direction)
            (Iface.cisco_name iface)
            (side missing_in_translation))
  | Attribute a ->
      Printf.sprintf "%s: %s is %s in the original but %s in the translation (%s)"
        a.component a.attribute a.original_value a.translated_value a.translated_component
  | Behavior b ->
      Printf.sprintf
        "policy %s (%s%s): for %s the original %ss but the translation %ss%s%s"
        b.policy
        (direction_to_string b.direction)
        (match b.neighbor with
        | Some n -> " for neighbor " ^ Ipv4.to_string n
        | None -> "")
        (Prefix.to_string b.example.Route.prefix)
        (Action.to_string b.original_action)
        (Action.to_string b.translated_action)
        (if b.is_redistribution then " [redistribution]" else "")
        (match b.effect_detail with
        | [] -> ""
        | fields ->
            " — "
            ^ String.concat ", "
                (List.map (fun (f, a, b) -> Printf.sprintf "%s: %s vs %s" f a b) fields))
  | Acl_behavior a ->
      let verdict = function
        | Action.Permit -> "permitted"
        | Action.Deny -> "denied"
      in
      Printf.sprintf
        "access list %s on %s (%s): the packet [%s] is %s by the original but %s \
         by the translation"
        a.acl (Iface.cisco_name a.iface)
        (direction_to_string a.acl_direction)
        (Packet.to_string a.packet)
        (verdict a.original_packet_action)
        (verdict a.translated_packet_action)

let pp_finding ppf f = Format.pp_print_string ppf (finding_to_string f)
