(** The Campion-equivalent differ: localized differences between an original
    (Cisco) configuration and its (Juniper) translation.

    Findings come in the paper's three semantic classes — structural
    mismatch, attribute difference, policy behavior difference — each
    localized to the component involved and, for behavior differences,
    carrying an example route, exactly the raw material Table 1's prompt
    formulas need.

    Export policies are compared {e effectively}: the Cisco side is first
    normalized with {!Juniper.Translate.of_cisco_ir} so that redistribution
    into BGP is part of the export policy on both sides; a difference whose
    witness is a non-BGP route is classified as a redistribution
    difference. *)

open Netcore
open Policy

type direction = Import | Export

type structural =
  | Missing_neighbor of { addr : Ipv4.t; missing_in_translation : bool }
  | Missing_acl_attachment of {
      iface : Iface.t;
      direction : direction;
      missing_in_translation : bool;
    }
  | Missing_policy of {
      neighbor : Ipv4.t;
      direction : direction;
      missing_in_translation : bool;
    }
  | Missing_network of { network : Prefix.t; missing_in_translation : bool }
  | Missing_bgp_process of { missing_in_translation : bool }
  | Missing_ospf_interface of { iface : Iface.t; missing_in_translation : bool }

type attribute = {
  component : string;  (** E.g. ["OSPF link for Loopback0"]. *)
  translated_component : string;  (** E.g. ["lo0.0"]. *)
  attribute : string;  (** E.g. ["cost"]. *)
  original_value : string;
  translated_value : string;
}

type behavior = {
  policy : string;
  neighbor : Ipv4.t option;
  direction : direction;
  example : Route.t;
  original_action : Action.t;
  translated_action : Action.t;
  is_redistribution : bool;
      (** The witness is a non-BGP-sourced route: the difference is in what
          gets redistributed into BGP. *)
  effect_detail : (string * string * string) list;
      (** For same-action differences: (attribute, original, translated). *)
}

type acl_behavior = {
  acl : string;
  iface : Iface.t;
  acl_direction : direction;
  packet : Packet.t;
  original_packet_action : Action.t;
  translated_packet_action : Action.t;
}
(** A data-plane difference: a packet one side's filter permits and the
    other's denies, localized to the interface and direction the filters
    are attached at. *)

type finding =
  | Structural of structural
  | Attribute of attribute
  | Behavior of behavior
  | Acl_behavior of acl_behavior

val compare : original:Config_ir.t -> translation:Config_ir.t -> finding list
(** Structural findings first, then attributes, then behavior — the order
    the paper says matters ("syntax errors and structural mismatches have to
    be handled earlier since they can mask attribute differences and policy
    behavior differences"). *)

val equivalent : original:Config_ir.t -> translation:Config_ir.t -> bool

val direction_to_string : direction -> string
val finding_to_string : finding -> string
val pp_finding : Format.formatter -> finding -> unit
