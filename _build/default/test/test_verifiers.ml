(* Tests for the verifier suite: Batfish-equivalent (parse check, search
   route policies, BGP simulation), the topology verifier, and the
   Campion-equivalent differ. *)

open Netcore
open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let pfx = Prefix.of_string_exn
let ip = Ipv4.of_string_exn
let comm = Community.of_string_exn

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Parse check                                                         *)
(* ------------------------------------------------------------------ *)

let test_parse_check_dialects () =
  check bool_t "cisco ok" true
    (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Cisco_ios Cisco.Samples.border_router);
  let junos =
    Juniper.Printer.print
      (Juniper.Translate.of_cisco_ir (fst (Cisco.Parser.parse Cisco.Samples.border_router)))
  in
  check bool_t "junos ok" true (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Junos junos);
  check bool_t "garbage cisco" false
    (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Cisco_ios "utter nonsense here\n")

let test_parse_check_lint_included () =
  let text = "router bgp 1\n neighbor 1.0.0.2 remote-as 2\n neighbor 1.0.0.2 route-map nope in\n" in
  let _, diags = Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios text in
  check bool_t "lint appended" true
    (List.exists (fun d -> contains ~sub:"undefined route-map" (Diag.to_string d)) diags)

(* ------------------------------------------------------------------ *)
(* Search route policies                                               *)
(* ------------------------------------------------------------------ *)

let config_with maps lists =
  { (Config_ir.empty "r") with Config_ir.route_maps = maps; community_lists = lists }

let cl name c = Community_list.make name [ Community_list.entry [ comm c ] ]

let space_with_community c =
  Symbolic.Pred.of_cube
    (Symbolic.Cube.make ~comms:(Symbolic.Comm_constr.require (comm c)) ())

let test_srp_holds () =
  let map =
    Route_map.make "FILTER"
      [
        Route_map.entry ~action:Action.Deny
          ~matches:[ Route_map.Match_community_list "cl1" ] 10;
        Route_map.entry 20;
      ]
  in
  let cfg = config_with [ map ] [ cl "cl1" "101:1" ] in
  let spec =
    {
      Batfish.Search_route_policies.policy = "FILTER";
      space = space_with_community "101:1";
      requirement = Batfish.Search_route_policies.Denies;
      description = "routes with 101:1";
    }
  in
  check bool_t "holds" true (Batfish.Search_route_policies.check cfg spec = Batfish.Search_route_policies.Holds)

let test_srp_counterexample () =
  (* AND semantics bug: both communities required to deny. *)
  let map =
    Route_map.make "FILTER"
      [
        Route_map.entry ~action:Action.Deny
          ~matches:
            [
              Route_map.Match_community_list "cl1";
              Route_map.Match_community_list "cl2";
            ]
          10;
        Route_map.entry 20;
      ]
  in
  let cfg = config_with [ map ] [ cl "cl1" "101:1"; cl "cl2" "102:1" ] in
  let spec =
    {
      Batfish.Search_route_policies.policy = "FILTER";
      space = space_with_community "101:1";
      requirement = Batfish.Search_route_policies.Denies;
      description = "routes with 101:1";
    }
  in
  match Batfish.Search_route_policies.check cfg spec with
  | Batfish.Search_route_policies.Violated v ->
      check bool_t "example has 101:1" true
        (Route.has_community v.Batfish.Search_route_policies.example (comm "101:1"));
      check bool_t "example permitted" true
        (v.Batfish.Search_route_policies.got_action = Action.Permit)
  | _ -> Alcotest.fail "expected violation"

let test_srp_adds_community () =
  let good =
    Route_map.make "TAG"
      [
        Route_map.entry
          ~sets:[ Route_map.Set_community { communities = [ comm "100:1" ]; additive = true } ]
          10;
      ]
  in
  let replacing =
    Route_map.make "TAG"
      [
        Route_map.entry
          ~sets:[ Route_map.Set_community { communities = [ comm "100:1" ]; additive = false } ]
          10;
      ]
  in
  let spec =
    {
      Batfish.Search_route_policies.policy = "TAG";
      space = Symbolic.Pred.full;
      requirement = Batfish.Search_route_policies.Adds_community (comm "100:1");
      description = "everything";
    }
  in
  check bool_t "additive holds" true
    (Batfish.Search_route_policies.check (config_with [ good ] []) spec
    = Batfish.Search_route_policies.Holds);
  match Batfish.Search_route_policies.check (config_with [ replacing ] []) spec with
  | Batfish.Search_route_policies.Violated v ->
      check bool_t "flags replacement" true v.Batfish.Search_route_policies.replaced_communities
  | _ -> Alcotest.fail "expected violation for replacing set"

let test_srp_policy_missing () =
  let spec =
    {
      Batfish.Search_route_policies.policy = "GHOST";
      space = Symbolic.Pred.full;
      requirement = Batfish.Search_route_policies.Permits;
      description = "";
    }
  in
  check bool_t "missing" true
    (Batfish.Search_route_policies.check (Config_ir.empty "r") spec
    = Batfish.Search_route_policies.Policy_missing)

(* ------------------------------------------------------------------ *)
(* BGP simulation                                                      *)
(* ------------------------------------------------------------------ *)

let star5 = Star.make ~routers:5
let tasks5 = Cosynth.Modularizer.plan star5
let configs5 = List.map (fun (t : Cosynth.Modularizer.router_task) -> (t.router, t.correct)) tasks5
let net5 = Cosynth.Modularizer.compose star5 configs5
let ribs5 = Batfish.Bgp_sim.run net5

let test_sim_converges () =
  check int_t "all routers have ribs" 5 (List.length (Batfish.Bgp_sim.routers ribs5))

let test_sim_customer_reachable_everywhere () =
  List.iter
    (fun s ->
      check bool_t (s ^ " reaches customer") true
        (Batfish.Bgp_sim.reachable ribs5 ~router:s (pfx "10.0.0.0/24")))
    star5.Star.spokes

let test_sim_no_transit () =
  (* R2 must not see R3's ISP network and vice versa. *)
  check bool_t "R2 lacks 10.3.0.0/24" false
    (Batfish.Bgp_sim.reachable ribs5 ~router:"R2" (pfx "10.3.0.0/24"));
  check bool_t "R3 lacks 10.2.0.0/24" false
    (Batfish.Bgp_sim.reachable ribs5 ~router:"R3" (pfx "10.2.0.0/24"));
  check bool_t "hub sees all" true
    (Batfish.Bgp_sim.reachable ribs5 ~router:"R1" (pfx "10.4.0.0/24"))

let test_sim_communities_tagged () =
  (* The hub's copy of an ISP route carries that ISP's community. *)
  match Batfish.Bgp_sim.lookup ribs5 ~router:"R1" (pfx "10.2.0.0/24") with
  | Some e ->
      check bool_t "tagged with 100:1" true
        (Route.has_community e.Batfish.Bgp_sim.route (comm "100:1"))
  | None -> Alcotest.fail "hub must know ISP 2's network"

let test_sim_as_path_loop_prevention () =
  (* Routes learned by a spoke never contain its own AS. *)
  List.iter
    (fun (e : Batfish.Bgp_sim.rib_entry) ->
      check bool_t "no own AS" false (As_path.mem 2 e.Batfish.Bgp_sim.route.Route.as_path))
    (Batfish.Bgp_sim.rib ribs5 "R2")

let test_sim_without_filters_transits () =
  (* Strip the hub's export policies: ISP routes leak to other ISPs. *)
  let configs =
    List.map
      (fun (name, (c : Config_ir.t)) ->
        if name = "R1" then
          match c.Config_ir.bgp with
          | Some b ->
              let neighbors =
                List.map
                  (fun (n : Config_ir.neighbor) -> { n with Config_ir.export_policy = None })
                  b.Config_ir.neighbors
              in
              (name, { c with Config_ir.bgp = Some { b with Config_ir.neighbors } })
          | None -> (name, c)
        else (name, c))
      configs5
  in
  let ribs = Batfish.Bgp_sim.run (Cosynth.Modularizer.compose star5 configs) in
  check bool_t "R2 now sees 10.3.0.0/24" true
    (Batfish.Bgp_sim.reachable ribs ~router:"R2" (pfx "10.3.0.0/24"));
  let ok, violations = Cosynth.Modularizer.no_transit_holds star5 configs in
  check bool_t "global check fails" false ok;
  check bool_t "violation mentions transit" true
    (List.exists (contains ~sub:"transit") violations)

let test_sim_missing_config_is_isolated () =
  let configs = List.remove_assoc "R3" configs5 in
  let ribs = Batfish.Bgp_sim.run (Cosynth.Modularizer.compose star5 configs) in
  check bool_t "R3 has empty rib" true (Batfish.Bgp_sim.rib ribs "R3" = []);
  check bool_t "others still work" true
    (Batfish.Bgp_sim.reachable ribs ~router:"R2" (pfx "10.0.0.0/24"))

(* ------------------------------------------------------------------ *)
(* Topology verifier                                                   *)
(* ------------------------------------------------------------------ *)

let hub_correct = List.assoc "R1" configs5
let spoke_correct = List.assoc "R2" configs5

let test_topo_clean () =
  check int_t "hub clean" 0
    (List.length (Topoverify.Verifier.check star5.Star.topology ~router:"R1" hub_correct));
  check int_t "spoke clean" 0
    (List.length (Topoverify.Verifier.check star5.Star.topology ~router:"R2" spoke_correct))

let findings_for config router =
  Topoverify.Verifier.check star5.Star.topology ~router config

let test_topo_wrong_local_as () =
  let bad =
    match spoke_correct.Config_ir.bgp with
    | Some b -> { spoke_correct with Config_ir.bgp = Some { b with Config_ir.asn = 9 } }
    | None -> assert false
  in
  let fs = findings_for bad "R2" in
  check bool_t "local as flagged" true
    (List.exists
       (fun (f : Topoverify.Verifier.finding) ->
         f.Topoverify.Verifier.kind = Topoverify.Verifier.Local_as_mismatch
         && contains ~sub:"Expected 2, found 9" f.Topoverify.Verifier.message)
       fs)

let test_topo_missing_neighbor () =
  let bad =
    match hub_correct.Config_ir.bgp with
    | Some b ->
        {
          hub_correct with
          Config_ir.bgp =
            Some
              {
                b with
                Config_ir.neighbors =
                  List.filter
                    (fun (n : Config_ir.neighbor) ->
                      not (Ipv4.equal n.Config_ir.addr (ip "1.0.0.2")))
                    b.Config_ir.neighbors;
              };
        }
    | None -> assert false
  in
  let fs = findings_for bad "R1" in
  check bool_t "neighbor flagged" true
    (List.exists
       (fun (f : Topoverify.Verifier.finding) ->
         contains ~sub:"Neighbor with IP address 1.0.0.2 and AS 2 not declared"
           f.Topoverify.Verifier.message)
       fs)

let test_topo_incorrect_network () =
  let bad =
    match hub_correct.Config_ir.bgp with
    | Some b ->
        {
          hub_correct with
          Config_ir.bgp =
            Some { b with Config_ir.networks = b.Config_ir.networks @ [ pfx "7.0.0.0/24" ] };
        }
    | None -> assert false
  in
  let fs = findings_for bad "R1" in
  check bool_t "network flagged" true
    (List.exists
       (fun (f : Topoverify.Verifier.finding) ->
         contains ~sub:"7.0.0.0/24 is not directly connected to R1"
           f.Topoverify.Verifier.message)
       fs)

let test_topo_interface_address () =
  let bad =
    {
      spoke_correct with
      Config_ir.interfaces =
        List.map
          (fun (i : Config_ir.interface) ->
            match i.Config_ir.address with
            | Some (a, l) -> { i with Config_ir.address = Some (Ipv4.succ a, l) }
            | None -> i)
          spoke_correct.Config_ir.interfaces;
    }
  in
  let fs = findings_for bad "R2" in
  check bool_t "address flagged" true
    (List.exists
       (fun (f : Topoverify.Verifier.finding) ->
         f.Topoverify.Verifier.kind = Topoverify.Verifier.Interface_address_mismatch)
       fs)

let test_topo_mask_length_mismatch () =
  let bad =
    {
      spoke_correct with
      Config_ir.interfaces =
        List.map
          (fun (i : Config_ir.interface) ->
            match i.Config_ir.address with
            | Some (a, _) -> { i with Config_ir.address = Some (a, 30) }
            | None -> i)
          spoke_correct.Config_ir.interfaces;
    }
  in
  let fs = findings_for bad "R2" in
  check bool_t "mask flagged" true
    (List.exists
       (fun (f : Topoverify.Verifier.finding) ->
         contains ~sub:"mask length does not match" f.Topoverify.Verifier.message)
       fs)

let test_topo_missing_interface () =
  let bad = { spoke_correct with Config_ir.interfaces = [] } in
  let fs = findings_for bad "R2" in
  check bool_t "two missing interfaces" true
    (List.length
       (List.filter
          (fun (f : Topoverify.Verifier.finding) ->
            f.Topoverify.Verifier.kind = Topoverify.Verifier.Missing_interface)
          fs)
    = 2)

let test_topo_router_id_absent () =
  let bad =
    match spoke_correct.Config_ir.bgp with
    | Some b -> { spoke_correct with Config_ir.bgp = Some { b with Config_ir.router_id = None } }
    | None -> assert false
  in
  let fs = findings_for bad "R2" in
  check bool_t "absent router id flagged" true
    (List.exists
       (fun (f : Topoverify.Verifier.finding) ->
         contains ~sub:"Router ID is not configured" f.Topoverify.Verifier.message)
       fs)

let test_topo_no_bgp_process () =
  let bad = { spoke_correct with Config_ir.bgp = None } in
  let fs = findings_for bad "R2" in
  check bool_t "flagged" true
    (List.exists
       (fun (f : Topoverify.Verifier.finding) ->
         f.Topoverify.Verifier.kind = Topoverify.Verifier.No_bgp_process)
       fs)

let test_topo_from_json () =
  let json = Star.to_json star5 in
  match Topoverify.Verifier.check_from_json json ~router:"R2" spoke_correct with
  | Ok [] -> ()
  | Ok fs -> Alcotest.failf "unexpected findings: %d" (List.length fs)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Campion                                                             *)
(* ------------------------------------------------------------------ *)

let border_ir = fst (Cisco.Parser.parse Cisco.Samples.border_router)
let correct_translation = Juniper.Translate.of_cisco_ir border_ir

let reparse_junos ir =
  fst (Juniper.Parser.parse (Juniper.Printer.print ir))

let test_campion_clean_on_correct_translation () =
  let translation = reparse_junos correct_translation in
  let findings = Campion.Differ.compare ~original:border_ir ~translation in
  if findings <> [] then
    Alcotest.failf "unexpected findings:\n%s"
      (String.concat "\n" (List.map Campion.Differ.finding_to_string findings))

let with_fault cls target =
  let f = Llmsim.Fault.make cls target in
  let text = Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_translation [ f ] in
  fst (Juniper.Parser.parse text)

let test_campion_missing_policy () =
  let translation =
    with_fault Llmsim.Error_class.Missing_import_policy (Llmsim.Fault.Neighbor (ip "2.3.4.5"))
  in
  let findings = Campion.Differ.compare ~original:border_ir ~translation in
  check bool_t "structural missing import" true
    (List.exists
       (function
         | Campion.Differ.Structural
             (Campion.Differ.Missing_policy
               { neighbor; direction = Campion.Differ.Import; missing_in_translation = true })
           -> Ipv4.equal neighbor (ip "2.3.4.5")
         | _ -> false)
       findings)

let test_campion_cost_difference () =
  let translation =
    with_fault Llmsim.Error_class.Ospf_cost_wrong (Llmsim.Fault.Interface (Iface.loopback 0))
  in
  let findings = Campion.Differ.compare ~original:border_ir ~translation in
  check bool_t "cost diff 1 vs 0" true
    (List.exists
       (function
         | Campion.Differ.Attribute a ->
             a.Campion.Differ.attribute = "cost"
             && a.Campion.Differ.original_value = "1"
             && a.Campion.Differ.translated_value = "0"
         | _ -> false)
       findings)

let test_campion_med_difference () =
  let translation =
    with_fault Llmsim.Error_class.Wrong_med (Llmsim.Fault.Policy_entry ("to_provider", 10))
  in
  let findings = Campion.Differ.compare ~original:border_ir ~translation in
  check bool_t "behavior MED diff" true
    (List.exists
       (function
         | Campion.Differ.Behavior b ->
             List.exists (fun (attr, _, _) -> attr = "MED") b.Campion.Differ.effect_detail
         | _ -> false)
       findings)

let test_campion_redistribution_difference () =
  let translation = with_fault Llmsim.Error_class.Redistribution_unscoped Llmsim.Fault.Whole_config in
  let findings = Campion.Differ.compare ~original:border_ir ~translation in
  check bool_t "redistribution flagged with non-bgp witness" true
    (List.exists
       (function
         | Campion.Differ.Behavior b -> b.Campion.Differ.is_redistribution
         | _ -> false)
       findings)

let test_campion_prefix_range_difference () =
  let translation =
    with_fault Llmsim.Error_class.Prefix_range_dropped (Llmsim.Fault.Named_list "our-networks")
  in
  let findings = Campion.Differ.compare ~original:border_ir ~translation in
  (* The dropped ge 24 means /25..32 under 1.2.3.0/24 are treated
     differently; the witness must be such a prefix. *)
  check bool_t "witness is a longer prefix of 1.2.3.0/24" true
    (List.exists
       (function
         | Campion.Differ.Behavior b ->
             Prefix.subsumes (pfx "1.2.3.0/24") b.Campion.Differ.example.Route.prefix
             && Prefix.len b.Campion.Differ.example.Route.prefix > 24
         | _ -> false)
       findings)

let test_campion_structural_masks_nothing_on_equal () =
  check bool_t "equivalent reflexive" true
    (Campion.Differ.equivalent ~original:border_ir
       ~translation:(reparse_junos correct_translation))

let () =
  Alcotest.run "verifiers"
    [
      ( "parse-check",
        [
          Alcotest.test_case "dialect dispatch" `Quick test_parse_check_dialects;
          Alcotest.test_case "lint included" `Quick test_parse_check_lint_included;
        ] );
      ( "search-route-policies",
        [
          Alcotest.test_case "holds" `Quick test_srp_holds;
          Alcotest.test_case "counterexample" `Quick test_srp_counterexample;
          Alcotest.test_case "adds community" `Quick test_srp_adds_community;
          Alcotest.test_case "policy missing" `Quick test_srp_policy_missing;
        ] );
      ( "bgp-sim",
        [
          Alcotest.test_case "converges" `Quick test_sim_converges;
          Alcotest.test_case "customer reachable" `Quick test_sim_customer_reachable_everywhere;
          Alcotest.test_case "no transit with filters" `Quick test_sim_no_transit;
          Alcotest.test_case "communities tagged" `Quick test_sim_communities_tagged;
          Alcotest.test_case "loop prevention" `Quick test_sim_as_path_loop_prevention;
          Alcotest.test_case "transit without filters" `Quick test_sim_without_filters_transits;
          Alcotest.test_case "missing config isolated" `Quick test_sim_missing_config_is_isolated;
        ] );
      ( "topology-verifier",
        [
          Alcotest.test_case "clean configs" `Quick test_topo_clean;
          Alcotest.test_case "wrong local as" `Quick test_topo_wrong_local_as;
          Alcotest.test_case "missing neighbor" `Quick test_topo_missing_neighbor;
          Alcotest.test_case "incorrect network" `Quick test_topo_incorrect_network;
          Alcotest.test_case "interface address" `Quick test_topo_interface_address;
          Alcotest.test_case "mask length" `Quick test_topo_mask_length_mismatch;
          Alcotest.test_case "missing interfaces" `Quick test_topo_missing_interface;
          Alcotest.test_case "router id absent" `Quick test_topo_router_id_absent;
          Alcotest.test_case "no bgp process" `Quick test_topo_no_bgp_process;
          Alcotest.test_case "from json" `Quick test_topo_from_json;
        ] );
      ( "campion",
        [
          Alcotest.test_case "clean on correct translation" `Quick
            test_campion_clean_on_correct_translation;
          Alcotest.test_case "missing policy" `Quick test_campion_missing_policy;
          Alcotest.test_case "cost difference" `Quick test_campion_cost_difference;
          Alcotest.test_case "med difference" `Quick test_campion_med_difference;
          Alcotest.test_case "redistribution difference" `Quick
            test_campion_redistribution_difference;
          Alcotest.test_case "prefix range difference" `Quick
            test_campion_prefix_range_difference;
          Alcotest.test_case "equivalence reflexive" `Quick
            test_campion_structural_masks_nothing_on_equal;
        ] );
    ]
