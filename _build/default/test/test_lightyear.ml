(* Tests for symbolic policy composition and the Lightyear-style modular
   proof of the no-transit policy, including the crossed-attachment fault
   that only whole-network checks can catch. *)

open Netcore
open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let comm = Community.of_string_exn
let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Compose                                                             *)
(* ------------------------------------------------------------------ *)

let env_with_lists =
  {
    Eval.prefix_lists = [];
    community_lists =
      [
        Community_list.make "c2" [ Community_list.entry [ comm "100:1" ] ];
        Community_list.make "c3" [ Community_list.entry [ comm "101:1" ] ];
      ];
    as_path_lists = [];
  }

let tag name c =
  Route_map.make name
    [
      Route_map.entry
        ~sets:[ Route_map.Set_community { communities = [ c ]; additive = true } ]
        10;
    ]

let filter_or name denied =
  (* deny any route carrying any of the given community lists (OR), else permit *)
  let denies =
    List.mapi
      (fun i cl ->
        Route_map.entry ~action:Action.Deny ~matches:[ Route_map.Match_community_list cl ]
          ((i + 1) * 10))
      denied
  in
  Route_map.make name (denies @ [ Route_map.entry ((List.length denied + 1) * 10) ])

let test_apply_effect_additive () =
  let e =
    Symbolic.Effects.of_sets
      [ Route_map.Set_community { communities = [ comm "100:1" ]; additive = true } ]
  in
  let out = Symbolic.Compose.apply_effect e Symbolic.Cube.full in
  (* Every route in the image carries 100:1. *)
  check bool_t "must contains" true
    (Community.Set.mem (comm "100:1") (Symbolic.Comm_constr.sample out.Symbolic.Cube.comms))

let test_apply_effect_med () =
  let e = Symbolic.Effects.of_sets [ Route_map.Set_med 50 ] in
  let out = Symbolic.Compose.apply_effect e Symbolic.Cube.full in
  check bool_t "med pinned" true (out.Symbolic.Cube.med = Symbolic.Int_constr.eq 50)

let test_image_soundness_concrete () =
  (* Any concrete route pushed through the map lands inside the image. *)
  let m = tag "TAG" (comm "100:1") in
  let img = Symbolic.Compose.image env_with_lists m Symbolic.Pred.full in
  let routes =
    [
      Route.make (pfx "1.2.3.0/24");
      Route.make ~communities:(Community.Set.singleton (comm "7:7")) (pfx "9.0.0.0/8");
      Route.make ~med:5 (pfx "10.1.0.0/16");
    ]
  in
  List.iter
    (fun r ->
      match Eval.eval env_with_lists m r with
      | Eval.Permitted out ->
          check bool_t "output inside image" true
            (Symbolic.Pred.satisfies ~env:env_with_lists out img)
      | Eval.Denied -> ())
    routes

let test_chain_tag_then_filter_blocks () =
  (* TAG adds 100:1; FILTER denies anything carrying 100:1: nothing passes. *)
  let m_tag = tag "TAG" (comm "100:1") in
  let m_filter = filter_or "FILTER" [ "c2" ] in
  let escaping =
    Symbolic.Compose.chain_permits ~env_a:env_with_lists ~map_a:m_tag
      ~env_b:env_with_lists ~map_b:m_filter Symbolic.Pred.full
  in
  check bool_t "empty" true (Symbolic.Pred.is_empty escaping)

let test_chain_wrong_filter_leaks () =
  (* TAG adds 100:1 but FILTER denies only 101:1: routes escape. *)
  let m_tag = tag "TAG" (comm "100:1") in
  let m_filter = filter_or "FILTER" [ "c3" ] in
  let escaping =
    Symbolic.Compose.chain_permits ~env_a:env_with_lists ~map_a:m_tag
      ~env_b:env_with_lists ~map_b:m_filter Symbolic.Pred.full
  in
  check bool_t "non-empty" false (Symbolic.Pred.is_empty escaping);
  match Symbolic.Pred.sample ~env:env_with_lists escaping with
  | Some r -> check bool_t "witness carries tag" true (Route.has_community r (comm "100:1"))
  | None -> Alcotest.fail "expected a witness"

(* ------------------------------------------------------------------ *)
(* Lightyear proof                                                     *)
(* ------------------------------------------------------------------ *)

let star = Star.make ~routers:6

let oracle_configs () =
  List.map
    (fun (t : Cosynth.Modularizer.router_task) ->
      (t.Cosynth.Modularizer.router, t.Cosynth.Modularizer.correct))
    (Cosynth.Modularizer.plan star)

let test_proof_on_correct_network () =
  check bool_t "proved" true
    (Cosynth.Lightyear.prove_no_transit star (oracle_configs ()) = Cosynth.Lightyear.Proved)

let break_hub fault =
  let configs = oracle_configs () in
  let hub = List.assoc "R1" configs in
  let text = Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub [ fault ] in
  let broken, _ = Cisco.Parser.parse text in
  ("R1", broken) :: List.remove_assoc "R1" configs

let test_proof_refutes_and_or () =
  let configs =
    break_hub
      (Llmsim.Fault.make Llmsim.Error_class.And_or_confusion
         (Llmsim.Fault.Policy (Cosynth.Modularizer.egress_map_name "R2")))
  in
  match Cosynth.Lightyear.prove_no_transit star configs with
  | Cosynth.Lightyear.Refuted r ->
      check bool_t "leak into R2" true (r.Cosynth.Lightyear.to_spoke = "R2");
      check bool_t "has witness" true (r.Cosynth.Lightyear.example <> None)
  | _ -> Alcotest.fail "expected refutation"

let test_proof_refutes_crossed_attachment () =
  let configs =
    break_hub
      (Llmsim.Fault.make Llmsim.Error_class.Crossed_policy_attachment
         Llmsim.Fault.Whole_config)
  in
  (match Cosynth.Lightyear.prove_no_transit star configs with
  | Cosynth.Lightyear.Refuted _ -> ()
  | _ -> Alcotest.fail "expected refutation");
  (* And the simulation agrees. *)
  let ok, _ = Cosynth.Modularizer.no_transit_holds star configs in
  check bool_t "simulation also fails" false ok

let test_crossed_attachment_invisible_locally () =
  (* The crossed hub passes syntax, topology and every local policy spec. *)
  let configs =
    break_hub
      (Llmsim.Fault.make Llmsim.Error_class.Crossed_policy_attachment
         Llmsim.Fault.Whole_config)
  in
  let hub_ir = List.assoc "R1" configs in
  let text = Cisco.Printer.print hub_ir in
  check bool_t "syntax clean" true
    (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Cisco_ios text);
  check bool_t "topology clean" true
    (Topoverify.Verifier.check star.Star.topology ~router:"R1" hub_ir = []);
  let hub_task = List.hd (Cosynth.Modularizer.plan star) in
  check bool_t "local specs hold" true
    (List.for_all
       (fun (_, o) -> o = Batfish.Search_route_policies.Holds)
       (Batfish.Search_route_policies.check_all hub_ir hub_task.Cosynth.Modularizer.specs))

let test_proof_side_conditions () =
  let configs = oracle_configs () in
  check bool_t "all hold" true (Cosynth.Lightyear.side_conditions star configs = []);
  (* Remove the hub's export policy on one session. *)
  let hub = List.assoc "R1" configs in
  let stripped =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub
      [
        Llmsim.Fault.make Llmsim.Error_class.Missing_export_policy
          (Llmsim.Fault.Neighbor (Ipv4.of_string_exn "1.0.0.2"));
      ]
  in
  let broken, _ = Cisco.Parser.parse stripped in
  let configs = ("R1", broken) :: List.remove_assoc "R1" configs in
  match Cosynth.Lightyear.prove_no_transit star configs with
  | Cosynth.Lightyear.Inapplicable _ -> ()
  | _ -> Alcotest.fail "expected inapplicable"

(* Soundness property: whenever the proof says Proved on a (possibly
   corrupted) network, the full simulation agrees. *)
let prop_proved_implies_simulation =
  let configs = oracle_configs () in
  let hub = List.assoc "R1" configs in
  let ops = Llmsim.Fault.opportunities Llmsim.Fault.Cisco_cfg hub in
  QCheck2.Test.make ~name:"Proved implies the simulation holds" ~count:60
    (QCheck2.Gen.int_bound (List.length ops - 1)) (fun i ->
      let fault = List.nth ops i in
      let text = Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub [ fault ] in
      let broken, _ = Cisco.Parser.parse text in
      let configs = ("R1", broken) :: List.remove_assoc "R1" configs in
      match Cosynth.Lightyear.prove_no_transit star configs with
      | Cosynth.Lightyear.Proved ->
          (* The proof covers isolation only; reachability failures (e.g. a
             syntax fault collapsing a filter into deny-all) are out of its
             scope and are caught by the local loop or the simulation. *)
          Cosynth.Modularizer.transit_violations star configs = []
      | Cosynth.Lightyear.Refuted _ | Cosynth.Lightyear.Inapplicable _ -> true)

(* ------------------------------------------------------------------ *)
(* Driver global phase                                                 *)
(* ------------------------------------------------------------------ *)

let test_driver_prove_final_check () =
  let r =
    Cosynth.Driver.run_no_transit ~seed:3 ~routers:5
      ~final_check:Cosynth.Driver.Both ()
  in
  check bool_t "global ok" true r.Cosynth.Driver.global_ok;
  check bool_t "proof returned" true (r.Cosynth.Driver.proof = Some Cosynth.Lightyear.Proved)

let test_driver_global_phase_recovers () =
  (* Seed 260 injects a crossed attachment on the 5-router star (found by
     scanning); the run must converge through global-counterexample
     prompts. *)
  let r = Cosynth.Driver.run_no_transit ~seed:260 ~routers:5 () in
  let globals =
    List.filter
      (fun (e : Cosynth.Driver.event) -> e.Cosynth.Driver.note = "global")
      r.Cosynth.Driver.transcript.Cosynth.Driver.events
  in
  check bool_t "global prompts were needed" true (globals <> []);
  check bool_t "still converged" true r.Cosynth.Driver.transcript.Cosynth.Driver.converged;
  check bool_t "global ok" true r.Cosynth.Driver.global_ok

let props = List.map QCheck_alcotest.to_alcotest [ prop_proved_implies_simulation ]

let () =
  Alcotest.run "lightyear"
    [
      ( "compose",
        [
          Alcotest.test_case "additive effect" `Quick test_apply_effect_additive;
          Alcotest.test_case "med effect" `Quick test_apply_effect_med;
          Alcotest.test_case "image soundness" `Quick test_image_soundness_concrete;
          Alcotest.test_case "tag-filter blocks" `Quick test_chain_tag_then_filter_blocks;
          Alcotest.test_case "wrong filter leaks" `Quick test_chain_wrong_filter_leaks;
        ] );
      ( "proof",
        [
          Alcotest.test_case "proves correct network" `Quick test_proof_on_correct_network;
          Alcotest.test_case "refutes and/or" `Quick test_proof_refutes_and_or;
          Alcotest.test_case "refutes crossed attachment" `Quick
            test_proof_refutes_crossed_attachment;
          Alcotest.test_case "crossed invisible locally" `Quick
            test_crossed_attachment_invisible_locally;
          Alcotest.test_case "side conditions" `Quick test_proof_side_conditions;
        ] );
      ( "driver",
        [
          Alcotest.test_case "prove as final check" `Slow test_driver_prove_final_check;
          Alcotest.test_case "global phase recovers" `Slow test_driver_global_phase_recovers;
        ] );
      ("properties", props);
    ]
