(* Tests for the CoSynth core: humanizer prompt formats (Tables 1 & 3),
   modularizer oracle and local specs, the VPP driver loops, leverage
   metrics, and the global-vs-local experiment. *)

open Netcore
open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn
let comm = Community.of_string_exn

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* IIP database                                                        *)
(* ------------------------------------------------------------------ *)

let test_iip_defaults () =
  check int_t "three defaults" 3 (List.length Cosynth.Iip.defaults);
  check bool_t "find" true (Cosynth.Iip.find "additive-community" <> None);
  check bool_t "missing" true (Cosynth.Iip.find "nope" = None);
  check bool_t "render mentions additive" true
    (contains ~sub:"additive" (Cosynth.Iip.render Cosynth.Iip.defaults))

(* ------------------------------------------------------------------ *)
(* Humanizer formats                                                   *)
(* ------------------------------------------------------------------ *)

let test_humanizer_syntax_prompt () =
  let d = Diag.error ~line:3 "'policy-options prefix-list our-networks 1.2.3.0/24-32' is not valid Juniper syntax" in
  let p = Cosynth.Humanizer.of_diag d in
  check bool_t "Table 1 syntax format" true
    (contains ~sub:"There is a syntax error:" p.Cosynth.Humanizer.text);
  check bool_t "ref inferred" true
    (List.exists
       (fun (f : Llmsim.Fault.t) ->
         Llmsim.Error_class.equal f.Llmsim.Fault.class_
           Llmsim.Error_class.Bad_prefix_list_syntax
         && f.Llmsim.Fault.target = Llmsim.Fault.Named_list "our-networks")
       p.Cosynth.Humanizer.refs)

let test_humanizer_structural_prompt () =
  let finding =
    Campion.Differ.Structural
      (Campion.Differ.Missing_policy
         {
           neighbor = ip "2.3.4.5";
           direction = Campion.Differ.Import;
           missing_in_translation = true;
         })
  in
  let p = Cosynth.Humanizer.of_campion finding in
  (* Table 1's structural mismatch example, verbatim structure. *)
  check bool_t "format" true
    (contains
       ~sub:
         "In the original configuration, there is an import route map for bgp \
          neighbor 2.3.4.5, but in the translation, there is no corresponding route \
          map"
       p.Cosynth.Humanizer.text)

let test_humanizer_attribute_prompt () =
  let finding =
    Campion.Differ.Attribute
      {
        Campion.Differ.component = "OSPF link for Loopback0";
        translated_component = "lo0.0";
        attribute = "cost";
        original_value = "1";
        translated_value = "0";
      }
  in
  let p = Cosynth.Humanizer.of_campion finding in
  check bool_t "Table 1 attribute format" true
    (contains
       ~sub:
         "In the original configuration, the OSPF link for Loopback0 has cost set \
          to 1, but in the translation, the corresponding link to lo0.0 has cost \
          set to 0"
       p.Cosynth.Humanizer.text);
  check bool_t "targets loopback" true
    (List.exists
       (fun (f : Llmsim.Fault.t) ->
         f.Llmsim.Fault.target = Llmsim.Fault.Interface (Iface.loopback 0))
       p.Cosynth.Humanizer.refs)

let test_humanizer_behavior_prompt () =
  let finding =
    Campion.Differ.Behavior
      {
        Campion.Differ.policy = "to_provider";
        neighbor = Some (ip "2.3.4.5");
        direction = Campion.Differ.Export;
        example = Route.make (pfx "1.2.3.0/25");
        original_action = Action.Permit;
        translated_action = Action.Deny;
        is_redistribution = false;
        effect_detail = [];
      }
  in
  let p = Cosynth.Humanizer.of_campion finding in
  check bool_t "Table 1 policy format" true
    (contains
       ~sub:
         "In the original configuration, for the prefix 1.2.3.0/25, the BGP export \
          policy to_provider for BGP neighbor 2.3.4.5 performs the following \
          action: PERMIT"
       p.Cosynth.Humanizer.text);
  check bool_t "translation side" true
    (contains
       ~sub:
         "the corresponding BGP export policy to_provider performs the following \
          action: DENY"
       p.Cosynth.Humanizer.text)

let test_humanizer_semantic_prompt () =
  let spec =
    {
      Batfish.Search_route_policies.policy = "DROP_COMMUNITY";
      space = Symbolic.Pred.full;
      requirement = Batfish.Search_route_policies.Denies;
      description = "";
    }
  in
  let v =
    {
      Batfish.Search_route_policies.spec;
      example =
        Route.make ~communities:(Community.Set.singleton (comm "100:1")) (pfx "5.0.0.0/24");
      got_action = Action.Permit;
      at_seq = Some 20;
      replaced_communities = false;
    }
  in
  let p = Cosynth.Humanizer.of_violation v in
  (* Table 3's semantic error example. *)
  check bool_t "format" true
    (contains
       ~sub:
         "The route-map DROP_COMMUNITY permits routes that have the community \
          100:1. However, they should be denied."
       p.Cosynth.Humanizer.text)

let test_humanizer_topology_prompt () =
  let star = Star.make ~routers:3 in
  let broken =
    let correct =
      (List.nth (Cosynth.Modularizer.plan star) 1).Cosynth.Modularizer.correct
    in
    match correct.Config_ir.bgp with
    | Some b -> { correct with Config_ir.bgp = Some { b with Config_ir.asn = 3 } }
    | None -> assert false
  in
  match Topoverify.Verifier.check star.Star.topology ~router:"R2" broken with
  | f :: _ ->
      let p = Cosynth.Humanizer.of_topology f in
      check bool_t "Table 3 format" true
        (contains ~sub:"Local AS number does not match. Expected 2, found 3"
           p.Cosynth.Humanizer.text);
      check bool_t "ref" true
        (List.exists
           (fun (f : Llmsim.Fault.t) ->
             Llmsim.Error_class.equal f.Llmsim.Fault.class_ Llmsim.Error_class.Wrong_local_as)
           p.Cosynth.Humanizer.refs)
  | [] -> Alcotest.fail "expected a finding"

(* ------------------------------------------------------------------ *)
(* Modularizer                                                         *)
(* ------------------------------------------------------------------ *)

let star7 = Star.make ~routers:7
let plan7 = Cosynth.Modularizer.plan star7

let test_plan_shape () =
  check int_t "one task per router" 7 (List.length plan7);
  check bool_t "hub first" true ((List.hd plan7).Cosynth.Modularizer.router = "R1");
  let hub = List.hd plan7 in
  (* 6 tag specs + 6 * (5 deny + 1 permit) filter specs. *)
  check int_t "hub specs" (6 + (6 * 6)) (List.length hub.Cosynth.Modularizer.specs);
  List.iter
    (fun (t : Cosynth.Modularizer.router_task) ->
      if t.Cosynth.Modularizer.router <> "R1" then
        check int_t "spokes have no specs" 0 (List.length t.Cosynth.Modularizer.specs))
    (List.tl plan7)

let test_oracle_configs_verify () =
  (* Every oracle config is syntax-clean, topology-clean and satisfies its
     local specs — otherwise the loop could never converge. *)
  List.iter
    (fun (t : Cosynth.Modularizer.router_task) ->
      let text = Cisco.Printer.print t.Cosynth.Modularizer.correct in
      let ir, diags = Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios text in
      check bool_t (t.Cosynth.Modularizer.router ^ " syntax") true
        (List.filter Diag.is_error diags = []);
      check int_t
        (t.Cosynth.Modularizer.router ^ " topology")
        0
        (List.length
           (Topoverify.Verifier.check star7.Star.topology
              ~router:t.Cosynth.Modularizer.router ir));
      List.iter
        (fun (spec, outcome) ->
          if outcome <> Batfish.Search_route_policies.Holds then
            Alcotest.failf "%s: spec '%s' does not hold" t.Cosynth.Modularizer.router
              spec.Batfish.Search_route_policies.description)
        (Batfish.Search_route_policies.check_all ir t.Cosynth.Modularizer.specs))
    plan7

let test_oracle_network_satisfies_global_policy () =
  let configs =
    List.map
      (fun (t : Cosynth.Modularizer.router_task) ->
        (t.Cosynth.Modularizer.router, t.Cosynth.Modularizer.correct))
      plan7
  in
  let ok, violations = Cosynth.Modularizer.no_transit_holds star7 configs in
  if not ok then Alcotest.failf "violations: %s" (String.concat "; " violations)

let test_plan_prompt_mentions_policy () =
  let hub = List.hd plan7 in
  check bool_t "mentions no-transit machinery" true
    (contains ~sub:"additive" hub.Cosynth.Modularizer.prompt);
  check bool_t "mentions communities" true
    (contains ~sub:"100:1" hub.Cosynth.Modularizer.prompt)

let test_and_or_violates_local_spec () =
  (* Applying the AND/OR fault to the hub must violate a Denies spec — this
     is the exact bug Batfish catches in Section 4.2. *)
  let hub = List.hd plan7 in
  let map = Cosynth.Modularizer.egress_map_name "R2" in
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub.Cosynth.Modularizer.correct
      [ Llmsim.Fault.make Llmsim.Error_class.And_or_confusion (Llmsim.Fault.Policy map) ]
  in
  let ir, _ = Cisco.Parser.parse text in
  let violated =
    List.exists
      (fun (_, outcome) ->
        match outcome with
        | Batfish.Search_route_policies.Violated v ->
            v.Batfish.Search_route_policies.spec.Batfish.Search_route_policies.policy = map
        | _ -> false)
      (Batfish.Search_route_policies.check_all ir hub.Cosynth.Modularizer.specs)
  in
  check bool_t "violation found" true violated

let test_as_path_strategy_is_sound () =
  (* GPT-4's "innovative strategy" under global prompting — AS-path regex
     filtering at the hub — actually satisfies the global policy when
     written correctly. *)
  let star = Star.make ~routers:5 in
  let configs =
    ("R1", Cosynth.Modularizer.as_path_hub_config star)
    :: List.filter_map
         (fun (t : Cosynth.Modularizer.router_task) ->
           if t.Cosynth.Modularizer.router = "R1" then None
           else Some (t.Cosynth.Modularizer.router, t.Cosynth.Modularizer.correct))
         (Cosynth.Modularizer.plan star)
  in
  let ok, violations = Cosynth.Modularizer.no_transit_holds star configs in
  if not ok then Alcotest.failf "violations: %s" (String.concat "; " violations)

let test_as_path_strategy_parses () =
  let star = Star.make ~routers:4 in
  let text = Cisco.Printer.print (Cosynth.Modularizer.as_path_hub_config star) in
  check bool_t "round trips through the dialect" true
    (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Cisco_ios text)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let cisco_text = Cisco.Samples.border_router

let test_translation_pinned_table2 () =
  let faults = Cosynth.Driver.table2_faults ~cisco_text in
  check int_t "eight forced faults" 8 (List.length faults);
  let r =
    Cosynth.Driver.run_translation ~seed:7 ~force_faults:faults ~suppress_random:true
      ~cisco_text ()
  in
  check bool_t "verified" true r.Cosynth.Driver.verified;
  let fixed cls =
    List.exists
      (fun (o : Cosynth.Driver.class_outcome) ->
        Llmsim.Error_class.equal o.Cosynth.Driver.class_ cls
        && o.Cosynth.Driver.fixed_by_generated_prompt)
      r.Cosynth.Driver.outcomes
  in
  (* Table 2: Yes rows. *)
  check bool_t "local-as yes" true (fixed Llmsim.Error_class.Missing_local_as);
  check bool_t "import yes" true (fixed Llmsim.Error_class.Missing_import_policy);
  check bool_t "cost yes" true (fixed Llmsim.Error_class.Ospf_cost_wrong);
  check bool_t "med yes" true (fixed Llmsim.Error_class.Wrong_med);
  (* Table 2: No rows. *)
  check bool_t "prefix range no" false (fixed Llmsim.Error_class.Prefix_range_dropped);
  check bool_t "redistribution no" false (fixed Llmsim.Error_class.Redistribution_unscoped)

let test_translation_random_converges () =
  List.iter
    (fun seed ->
      let r = Cosynth.Driver.run_translation ~seed ~cisco_text () in
      check bool_t (Printf.sprintf "seed %d verified" seed) true r.Cosynth.Driver.verified;
      check bool_t "leverage >= 1" true
        (Cosynth.Driver.leverage r.Cosynth.Driver.transcript >= 1.0))
    [ 1; 2; 3; 4; 5 ]

let test_translation_final_text_parses () =
  let r = Cosynth.Driver.run_translation ~seed:9 ~cisco_text () in
  check bool_t "final text clean" true
    (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Junos r.Cosynth.Driver.final_text)

let test_no_transit_converges () =
  List.iter
    (fun seed ->
      let r = Cosynth.Driver.run_no_transit ~seed ~routers:7 () in
      check bool_t (Printf.sprintf "seed %d global ok" seed) true r.Cosynth.Driver.global_ok;
      check bool_t "all routers verified" true
        (List.for_all snd r.Cosynth.Driver.per_router_verified);
      check int_t "seven configs" 7 (List.length r.Cosynth.Driver.configs))
    [ 1; 2; 3 ]

let test_no_transit_small_star () =
  let r = Cosynth.Driver.run_no_transit ~seed:4 ~routers:3 () in
  check bool_t "3-router star works" true r.Cosynth.Driver.global_ok

let test_no_transit_final_configs_pass_global_check () =
  let star = Star.make ~routers:5 in
  let r = Cosynth.Driver.run_no_transit ~seed:11 ~routers:5 () in
  let ok, _ = Cosynth.Modularizer.no_transit_holds star r.Cosynth.Driver.configs in
  check bool_t "recheck passes" true ok

let test_transcript_accounting () =
  let r = Cosynth.Driver.run_no_transit ~seed:2 ~routers:4 () in
  let t = r.Cosynth.Driver.transcript in
  let autos =
    List.length
      (List.filter (fun (e : Cosynth.Driver.event) -> e.Cosynth.Driver.origin = Cosynth.Driver.Auto) t.Cosynth.Driver.events)
  in
  let humans =
    List.length
      (List.filter (fun (e : Cosynth.Driver.event) -> e.Cosynth.Driver.origin = Cosynth.Driver.Human) t.Cosynth.Driver.events)
  in
  check int_t "auto count matches events" t.Cosynth.Driver.auto_prompts autos;
  check int_t "human count matches events" t.Cosynth.Driver.human_prompts humans;
  check bool_t "initial prompt is human" true (humans >= 1)

(* ------------------------------------------------------------------ *)
(* Metrics and global-vs-local                                         *)
(* ------------------------------------------------------------------ *)

let test_metrics_summary () =
  let s = Cosynth.Metrics.translation_summary ~runs:5 ~cisco_text () in
  check int_t "runs" 5 s.Cosynth.Metrics.runs;
  check int_t "all converge" 5 s.Cosynth.Metrics.converged;
  check bool_t "leverage positive" true (s.Cosynth.Metrics.mean_leverage > 1.0);
  check bool_t "min <= mean <= max" true
    (s.Cosynth.Metrics.min_leverage <= s.Cosynth.Metrics.mean_leverage
    && s.Cosynth.Metrics.mean_leverage <= s.Cosynth.Metrics.max_leverage)

let test_global_vs_local () =
  let c = Cosynth.Global_vs_local.compare ~runs:10 ~routers:7 () in
  (* The paper's observation: local-policy prompting converges reliably,
     global prompting mostly does not. *)
  check bool_t "local converges more" true
    (c.Cosynth.Global_vs_local.local_convergence_rate
    > c.Cosynth.Global_vs_local.global_convergence_rate);
  check bool_t "local always converges" true
    (c.Cosynth.Global_vs_local.local_convergence_rate = 1.0);
  check bool_t "global oscillates" true (c.Cosynth.Global_vs_local.global_mean_switches > 1.0)

let test_transcript_markdown () =
  let r = Cosynth.Driver.run_translation ~seed:3 ~cisco_text () in
  let md =
    Cosynth.Driver.transcript_to_markdown ~title:"Test run" r.Cosynth.Driver.transcript
  in
  check bool_t "has title" true (contains ~sub:"# Test run" md);
  check bool_t "tags humans" true (contains ~sub:"[HUMAN]" md);
  check bool_t "tags automated" true (contains ~sub:"[automated]" md);
  check bool_t "reports leverage" true (contains ~sub:"leverage" md);
  (* One section per event. *)
  let sections =
    List.length
      (List.filter
         (fun l -> String.length l > 3 && String.sub l 0 3 = "## ")
         (String.split_on_char '\n' md))
  in
  check int_t "sections = events" 
    (List.length r.Cosynth.Driver.transcript.Cosynth.Driver.events)
    sections

let test_global_violation_prompt () =
  let p =
    Cosynth.Humanizer.of_global_violations ~hub:"R1"
      [ "R2 can reach R3's network 10.3.0.0/24 (transit through the customer!)" ]
  in
  check bool_t "quotes the counterexample" true
    (contains ~sub:"R2 can reach R3's network" p.Cosynth.Humanizer.text);
  check bool_t "points at attachments" true
    (contains ~sub:"attached to which" p.Cosynth.Humanizer.text);
  check bool_t "refs crossed attachment" true
    (List.exists
       (fun (f : Llmsim.Fault.t) ->
         Llmsim.Error_class.equal f.Llmsim.Fault.class_
           Llmsim.Error_class.Crossed_policy_attachment)
       p.Cosynth.Humanizer.refs)

let test_metrics_stddev () =
  let s = Cosynth.Metrics.translation_summary ~runs:8 ~cisco_text () in
  check bool_t "stddev non-negative" true (s.Cosynth.Metrics.stddev_leverage >= 0.0);
  check bool_t "stddev bounded by range" true
    (s.Cosynth.Metrics.stddev_leverage
    <= s.Cosynth.Metrics.max_leverage -. s.Cosynth.Metrics.min_leverage +. 1e-9)

let test_quality_reduces_leverage () =
  (* The paper's prediction: a near-perfect future LLM needs almost no
     automatic correction, so leverage decreases. *)
  let mean q =
    let ts =
      List.init 8 (fun i ->
          (Cosynth.Driver.run_translation ~seed:(6000 + i) ~quality:q ~cisco_text ())
            .Cosynth.Driver.transcript)
    in
    (Cosynth.Metrics.summarize ts).Cosynth.Metrics.mean_auto
  in
  let low = mean 0.0 and high = mean 0.95 in
  check bool_t "near-perfect model needs far fewer automated prompts" true
    (high < low /. 3.0)

let test_quality_all_converge () =
  List.iter
    (fun q ->
      let r = Cosynth.Driver.run_translation ~seed:77 ~quality:q ~cisco_text () in
      check bool_t (Printf.sprintf "quality %.2f verified" q) true r.Cosynth.Driver.verified)
    [ 0.0; 0.5; 1.0 ]

let test_report_table () =
  let s = Cosynth.Report.table ~title:"T" ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check bool_t "has title" true (contains ~sub:"T\n" s);
  check bool_t "aligned" true (contains ~sub:"333" s)

let () =
  Alcotest.run "cosynth"
    [
      ("iip", [ Alcotest.test_case "defaults" `Quick test_iip_defaults ]);
      ( "humanizer",
        [
          Alcotest.test_case "syntax prompt" `Quick test_humanizer_syntax_prompt;
          Alcotest.test_case "structural prompt" `Quick test_humanizer_structural_prompt;
          Alcotest.test_case "attribute prompt" `Quick test_humanizer_attribute_prompt;
          Alcotest.test_case "behavior prompt" `Quick test_humanizer_behavior_prompt;
          Alcotest.test_case "semantic prompt" `Quick test_humanizer_semantic_prompt;
          Alcotest.test_case "topology prompt" `Quick test_humanizer_topology_prompt;
        ] );
      ( "modularizer",
        [
          Alcotest.test_case "plan shape" `Quick test_plan_shape;
          Alcotest.test_case "oracle configs verify" `Quick test_oracle_configs_verify;
          Alcotest.test_case "oracle network satisfies global" `Quick
            test_oracle_network_satisfies_global_policy;
          Alcotest.test_case "prompt mentions policy" `Quick test_plan_prompt_mentions_policy;
          Alcotest.test_case "and/or violates spec" `Quick test_and_or_violates_local_spec;
          Alcotest.test_case "as-path strategy sound" `Quick test_as_path_strategy_is_sound;
          Alcotest.test_case "as-path strategy parses" `Quick test_as_path_strategy_parses;
        ] );
      ( "driver",
        [
          Alcotest.test_case "table 2 pinned" `Quick test_translation_pinned_table2;
          Alcotest.test_case "translation converges" `Slow test_translation_random_converges;
          Alcotest.test_case "final text parses" `Quick test_translation_final_text_parses;
          Alcotest.test_case "no-transit converges" `Slow test_no_transit_converges;
          Alcotest.test_case "small star" `Quick test_no_transit_small_star;
          Alcotest.test_case "final configs pass global" `Quick
            test_no_transit_final_configs_pass_global_check;
          Alcotest.test_case "transcript accounting" `Quick test_transcript_accounting;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "summary" `Slow test_metrics_summary;
          Alcotest.test_case "global vs local" `Slow test_global_vs_local;
          Alcotest.test_case "transcript markdown" `Slow test_transcript_markdown;
          Alcotest.test_case "global violation prompt" `Quick test_global_violation_prompt;
          Alcotest.test_case "stddev" `Slow test_metrics_stddev;
          Alcotest.test_case "quality reduces leverage" `Slow test_quality_reduces_leverage;
          Alcotest.test_case "quality converges" `Slow test_quality_all_converge;
          Alcotest.test_case "report table" `Quick test_report_table;
        ] );
    ]
