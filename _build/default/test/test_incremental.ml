(* Tests for the incremental-policy extension: the paper's closing question
   about adding a policy without interfering with verified ones. *)

open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let star = Netcore.Star.make ~routers:6
let task = Cosynth.Modularizer.prepend_task star ~target:"R2" ~prepend:[ 1; 1 ]

let test_task_correct_config_verifies () =
  (* The oracle for the incremental task satisfies all old specs plus the
     new prepend requirement. *)
  List.iter
    (fun (spec, outcome) ->
      if outcome <> Batfish.Search_route_policies.Holds then
        Alcotest.failf "spec '%s' does not hold"
          spec.Batfish.Search_route_policies.description)
    (Batfish.Search_route_policies.check_all task.Cosynth.Modularizer.correct
       task.Cosynth.Modularizer.specs)

let test_task_preserves_no_transit () =
  let base =
    List.map
      (fun (t : Cosynth.Modularizer.router_task) ->
        (t.Cosynth.Modularizer.router, t.Cosynth.Modularizer.correct))
      (Cosynth.Modularizer.plan star)
  in
  let configs = ("R1", task.Cosynth.Modularizer.correct) :: List.remove_assoc "R1" base in
  check bool_t "no-transit still holds" true
    (fst (Cosynth.Modularizer.no_transit_holds star configs));
  check bool_t "proof still goes through" true
    (Cosynth.Lightyear.prove_no_transit star configs = Cosynth.Lightyear.Proved)

let test_task_rejects_non_spoke () =
  Alcotest.check_raises "hub is not a spoke"
    (Invalid_argument "Modularizer.prepend_task: R1 is not a spoke") (fun () ->
      ignore (Cosynth.Modularizer.prepend_task star ~target:"R1" ~prepend:[ 1 ]))

let test_inserted_early_breaks_denies () =
  (* The edit mistake: prepend term placed before the verified denies. The
     old Denies specs must catch it. *)
  let map = Cosynth.Modularizer.egress_map_name "R2" in
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg task.Cosynth.Modularizer.correct
      [ Llmsim.Fault.make Llmsim.Error_class.Policy_inserted_early (Llmsim.Fault.Policy map) ]
  in
  let ir, _ = Cisco.Parser.parse text in
  let denies_violated =
    List.exists
      (fun (spec, outcome) ->
        match (spec.Batfish.Search_route_policies.requirement, outcome) with
        | Batfish.Search_route_policies.Denies, Batfish.Search_route_policies.Violated _ ->
            spec.Batfish.Search_route_policies.policy = map
        | _ -> false)
      (Batfish.Search_route_policies.check_all ir task.Cosynth.Modularizer.specs)
  in
  check bool_t "deny spec violated" true denies_violated

let test_wrong_map_breaks_prepend_spec () =
  let map = Cosynth.Modularizer.egress_map_name "R2" in
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg task.Cosynth.Modularizer.correct
      [ Llmsim.Fault.make Llmsim.Error_class.Wrong_policy_modified (Llmsim.Fault.Policy map) ]
  in
  let ir, _ = Cisco.Parser.parse text in
  let prepend_violated =
    List.exists
      (fun (spec, outcome) ->
        match (spec.Batfish.Search_route_policies.requirement, outcome) with
        | Batfish.Search_route_policies.Prepends _, Batfish.Search_route_policies.Violated _ ->
            true
        | _ -> false)
      (Batfish.Search_route_policies.check_all ir task.Cosynth.Modularizer.specs)
  in
  check bool_t "prepend spec violated" true prepend_violated

let test_incremental_loop_converges () =
  List.iter
    (fun seed ->
      let r = Cosynth.Driver.run_incremental ~seed ~routers:6 () in
      check bool_t (Printf.sprintf "seed %d specs hold" seed) true r.Cosynth.Driver.specs_hold;
      check bool_t "global still ok" true r.Cosynth.Driver.global_ok;
      (* And the final config actually prepends. *)
      let map =
        Option.get
          (Config_ir.find_route_map r.Cosynth.Driver.hub_config
             (Cosynth.Modularizer.egress_map_name "R2"))
      in
      let has_prepend =
        List.exists
          (fun (e : Route_map.entry) ->
            e.Route_map.action = Action.Permit
            && List.exists
                 (function Route_map.Set_as_path_prepend _ -> true | _ -> false)
                 e.Route_map.sets)
          map.Route_map.entries
      in
      check bool_t "prepend present" true has_prepend)
    [ 1; 2; 3; 4; 5 ]

let test_incremental_interference_is_caught_and_repaired () =
  (* Across seeds, some runs inject the early-insert mistake; those must be
     caught (interference_caught) and still end verified. *)
  let results = List.init 25 (fun i -> Cosynth.Driver.run_incremental ~seed:(i * 31) ~routers:6 ()) in
  check bool_t "some interference observed" true
    (List.exists (fun r -> r.Cosynth.Driver.interference_caught) results);
  check bool_t "all repaired" true (List.for_all (fun r -> r.Cosynth.Driver.global_ok) results)

let () =
  Alcotest.run "incremental"
    [
      ( "task",
        [
          Alcotest.test_case "oracle verifies" `Quick test_task_correct_config_verifies;
          Alcotest.test_case "preserves no-transit" `Quick test_task_preserves_no_transit;
          Alcotest.test_case "rejects non-spoke" `Quick test_task_rejects_non_spoke;
        ] );
      ( "faults",
        [
          Alcotest.test_case "inserted early breaks denies" `Quick
            test_inserted_early_breaks_denies;
          Alcotest.test_case "wrong map breaks prepend" `Quick
            test_wrong_map_breaks_prepend_spec;
        ] );
      ( "loop",
        [
          Alcotest.test_case "converges" `Slow test_incremental_loop_converges;
          Alcotest.test_case "interference caught and repaired" `Slow
            test_incremental_interference_is_caught_and_repaired;
        ] );
    ]
