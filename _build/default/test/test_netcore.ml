(* Unit and property tests for the netcore substrate. *)

open Netcore

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Ipv4                                                                *)
(* ------------------------------------------------------------------ *)

let test_ipv4_parse_print () =
  List.iter
    (fun s -> check string_t s s (Ipv4.to_string (Ipv4.of_string_exn s)))
    [ "0.0.0.0"; "1.2.3.4"; "255.255.255.255"; "10.0.0.1"; "192.168.1.254" ]

let test_ipv4_reject () =
  List.iter
    (fun s -> check bool_t s true (Ipv4.of_string s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "1..2.3" ]

let test_ipv4_octets () =
  let a = Ipv4.of_octets 10 20 30 40 in
  check bool_t "octets round trip" true (Ipv4.to_octets a = (10, 20, 30, 40));
  check int_t "numeric value" ((10 lsl 24) lor (20 lsl 16) lor (30 lsl 8) lor 40)
    (Ipv4.to_int a)

let test_ipv4_bits () =
  let a = Ipv4.of_octets 128 0 0 1 in
  check bool_t "msb set" true (Ipv4.bit a 0);
  check bool_t "bit 1 clear" false (Ipv4.bit a 1);
  check bool_t "lsb set" true (Ipv4.bit a 31)

let test_ipv4_mask_network () =
  check string_t "mask 24" "255.255.255.0" (Ipv4.to_string (Ipv4.mask 24));
  check string_t "mask 0" "0.0.0.0" (Ipv4.to_string (Ipv4.mask 0));
  check string_t "mask 32" "255.255.255.255" (Ipv4.to_string (Ipv4.mask 32));
  check string_t "network" "10.1.2.0"
    (Ipv4.to_string (Ipv4.network (Ipv4.of_octets 10 1 2 99) 24))

let test_ipv4_succ_wraps () =
  check string_t "succ" "0.0.0.0" (Ipv4.to_string (Ipv4.succ Ipv4.broadcast_all));
  check string_t "succ carries" "1.2.4.0"
    (Ipv4.to_string (Ipv4.succ (Ipv4.of_octets 1 2 3 255)))

(* ------------------------------------------------------------------ *)
(* Prefix                                                              *)
(* ------------------------------------------------------------------ *)

let pfx = Prefix.of_string_exn

let test_prefix_normalizes () =
  check string_t "host bits zeroed" "10.1.2.0/24"
    (Prefix.to_string (Prefix.make (Ipv4.of_octets 10 1 2 99) 24))

let test_prefix_parse () =
  check string_t "parse" "1.2.3.0/24" (Prefix.to_string (pfx "1.2.3.0/24"));
  check string_t "bare address is /32" "1.2.3.4/32" (Prefix.to_string (pfx "1.2.3.4"));
  check bool_t "reject /33" true (Prefix.of_string "1.2.3.0/33" = None);
  check bool_t "reject junk" true (Prefix.of_string "1.2.3.0/x" = None)

let test_prefix_contains () =
  let p = pfx "10.0.0.0/8" in
  check bool_t "contains" true (Prefix.contains_addr p (Ipv4.of_octets 10 255 0 1));
  check bool_t "not contains" false (Prefix.contains_addr p (Ipv4.of_octets 11 0 0 1))

let test_prefix_subsumes () =
  check bool_t "shorter subsumes longer" true (Prefix.subsumes (pfx "10.0.0.0/8") (pfx "10.1.0.0/16"));
  check bool_t "not reverse" false (Prefix.subsumes (pfx "10.1.0.0/16") (pfx "10.0.0.0/8"));
  check bool_t "self" true (Prefix.subsumes (pfx "10.0.0.0/8") (pfx "10.0.0.0/8"));
  check bool_t "disjoint" false (Prefix.subsumes (pfx "10.0.0.0/8") (pfx "11.0.0.0/8"))

let test_prefix_split () =
  match Prefix.split (pfx "10.0.0.0/8") with
  | Some (lo, hi) ->
      check string_t "low half" "10.0.0.0/9" (Prefix.to_string lo);
      check string_t "high half" "10.128.0.0/9" (Prefix.to_string hi)
  | None -> Alcotest.fail "split of /8 returned None"

let test_prefix_split_host () =
  check bool_t "no split of /32" true (Prefix.split (pfx "1.2.3.4/32") = None)

let test_prefix_last () =
  check string_t "broadcast" "10.0.255.255"
    (Ipv4.to_string (Prefix.last (pfx "10.0.0.0/16")))

(* ------------------------------------------------------------------ *)
(* Prefix_range                                                        *)
(* ------------------------------------------------------------------ *)

let test_range_ge () =
  (* The paper's "ge 24": match prefixes inside 1.2.3.0/24 of length >= 24. *)
  let r = Prefix_range.ge (pfx "1.2.3.0/24") 24 in
  check bool_t "matches /24" true (Prefix_range.matches r (pfx "1.2.3.0/24"));
  check bool_t "matches /25" true (Prefix_range.matches r (pfx "1.2.3.128/25"));
  check bool_t "matches /32" true (Prefix_range.matches r (pfx "1.2.3.77/32"));
  check bool_t "not outside" false (Prefix_range.matches r (pfx "1.2.4.0/24"));
  check bool_t "not shorter" false (Prefix_range.matches r (pfx "1.2.0.0/16"))

let test_range_exact () =
  let r = Prefix_range.exact (pfx "1.2.3.0/24") in
  check bool_t "matches itself" true (Prefix_range.matches r (pfx "1.2.3.0/24"));
  check bool_t "not longer" false (Prefix_range.matches r (pfx "1.2.3.0/25"))

let test_range_bounds_invalid () =
  Alcotest.check_raises "ge below base length" (Invalid_argument "Prefix_range.make: invalid bounds 1.2.3.0/24 ge 20 le 32")
    (fun () -> ignore (Prefix_range.make (pfx "1.2.3.0/24") ~ge:20 ~le:32))

let test_range_to_string () =
  check string_t "exact" "1.2.3.0/24"
    (Prefix_range.to_string (Prefix_range.exact (pfx "1.2.3.0/24")));
  check string_t "ge" "1.2.3.0/24 ge 25"
    (Prefix_range.to_string (Prefix_range.make (pfx "1.2.3.0/24") ~ge:25 ~le:32));
  check string_t "ge le" "1.2.3.0/24 ge 25 le 30"
    (Prefix_range.to_string (Prefix_range.make (pfx "1.2.3.0/24") ~ge:25 ~le:30))

(* ------------------------------------------------------------------ *)
(* Community / As_path                                                 *)
(* ------------------------------------------------------------------ *)

let test_community_parse () =
  check string_t "round trip" "100:1" (Community.to_string (Community.of_string_exn "100:1"));
  check bool_t "reject" true (Community.of_string "100" = None);
  check bool_t "reject big" true (Community.of_string "70000:1" = None);
  check bool_t "reject negative" true (Community.of_string "-1:1" = None)

let test_community_set () =
  let s = Community.Set.of_list [ Community.make 101 1; Community.make 100 1 ] in
  check string_t "ordered rendering" "100:1 101:1" (Community.Set.to_string s)

let test_as_path_basics () =
  let p = As_path.of_list [ 100; 200; 300 ] in
  check string_t "to_string" "100 200 300" (As_path.to_string p);
  check bool_t "of_string" true (As_path.of_string "100 200 300" = Some p);
  check int_t "length" 3 (As_path.length p);
  check bool_t "origin" true (As_path.origin p = Some 300);
  check bool_t "head" true (As_path.head p = Some 100);
  check string_t "prepend" "99 100 200 300" (As_path.to_string (As_path.prepend 99 p));
  check string_t "prepend_n" "7 7 7" (As_path.to_string (As_path.prepend_n 7 3 As_path.empty))

let test_as_path_regex () =
  let p = As_path.of_list [ 100; 200; 300 ] in
  check bool_t "underscore start" true (As_path.matches ~regex:"^100_" p);
  check bool_t "underscore middle" true (As_path.matches ~regex:"_200_" p);
  check bool_t "origin anchor" true (As_path.matches ~regex:"_300$" p);
  check bool_t "no false hit on 30" false (As_path.matches ~regex:"_30_" p);
  check bool_t "empty path ^$" true (As_path.matches ~regex:"^$" As_path.empty);
  check bool_t "any transit" true (As_path.matches ~regex:"_200_" p)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "R1");
        ("as", Json.Int 1);
        ("up", Json.Bool true);
        ("nothing", Json.Null);
        ("nums", Json.List [ Json.Int 1; Json.Int 2; Json.Float 3.5 ]);
        ("nested", Json.Obj [ ("k", Json.String "va\"lue\n") ]);
      ]
  in
  check bool_t "compact round trip" true (Json.of_string_exn (Json.to_string v) = v);
  check bool_t "pretty round trip" true
    (Json.of_string_exn (Json.to_string ~pretty:true v) = v)

let test_json_parse_errors () =
  List.iter
    (fun s -> check bool_t s true (Result.is_error (Json.of_string s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{\"a\":1,}"; "1 2" ]

let test_json_accessors () =
  let v = Json.of_string_exn {|{"a": 1, "b": "x", "c": [true]}|} in
  check int_t "member int" 1 (Json.int_exn (Json.member_exn "a" v));
  check string_t "member str" "x" (Json.str_exn (Json.member_exn "b" v));
  check bool_t "missing member" true (Json.member "zz" v = None);
  check bool_t "list" true (Json.to_list (Json.member_exn "c" v) = Some [ Json.Bool true ])

(* ------------------------------------------------------------------ *)
(* Iface                                                               *)
(* ------------------------------------------------------------------ *)

let test_iface_names () =
  let e01 = Iface.ethernet ~slot:0 ~port:1 in
  check string_t "cisco" "Ethernet0/1" (Iface.cisco_name e01);
  check string_t "junos" "ge-0/0/1.0" (Iface.junos_name e01);
  check string_t "loopback junos" "lo0.0" (Iface.junos_name (Iface.loopback 0))

let test_iface_parse () =
  check bool_t "eth abbrev" true (Iface.of_cisco "eth0/1" = Some (Iface.ethernet ~slot:0 ~port:1));
  check bool_t "full name" true
    (Iface.of_cisco "Ethernet0/1" = Some (Iface.ethernet ~slot:0 ~port:1));
  check bool_t "loopback" true (Iface.of_cisco "Loopback0" = Some (Iface.loopback 0));
  check bool_t "junos ge" true
    (Iface.of_junos "ge-0/0/1.0" = Some (Iface.ethernet ~slot:0 ~port:1));
  check bool_t "junos lo" true (Iface.of_junos "lo0.0" = Some (Iface.loopback 0));
  check bool_t "garbage" true (Iface.of_cisco "Tunnel99" = None)

(* ------------------------------------------------------------------ *)
(* Topology / Star                                                     *)
(* ------------------------------------------------------------------ *)

let star7 = Star.make ~routers:7

let test_star_shape () =
  let t = star7.Star.topology in
  check int_t "router count" 7 (List.length t.Topology.routers);
  check int_t "link count" 6 (List.length t.Topology.links);
  check int_t "hub degree" 6 (Topology.degree t "R1");
  check int_t "spoke degree" 1 (Topology.degree t "R4")

let test_star_validates () =
  check bool_t "valid" true (Topology.validate star7.Star.topology = Ok ())

let test_star_addressing () =
  let t = star7.Star.topology in
  let r2 = Topology.find_router_exn t "R2" in
  check int_t "R2 AS" 2 r2.Topology.asn;
  check string_t "R2 router id" "1.0.0.2" (Ipv4.to_string r2.Topology.router_id);
  let sessions = Topology.sessions_of t "R2" in
  check int_t "R2 one session" 1 (List.length sessions);
  let s = List.hd sessions in
  check string_t "peer addr" "1.0.0.1" (Ipv4.to_string s.Topology.peer_addr);
  check int_t "peer as" 1 s.Topology.peer_asn

let test_star_networks () =
  let t = star7.Star.topology in
  let hub_nets = Topology.networks_of t "R1" in
  (* Customer net + 6 link subnets. *)
  check int_t "hub networks" 7 (List.length hub_nets);
  check bool_t "customer net first" true
    (Prefix.equal (List.hd hub_nets) (pfx "10.0.0.0/24"));
  let r3_nets = Topology.networks_of t "R3" in
  check bool_t "spoke announces isp net" true
    (List.exists (Prefix.equal (pfx "10.3.0.0/24")) r3_nets);
  check bool_t "spoke announces link net" true
    (List.exists (Prefix.equal (pfx "2.0.0.0/24")) r3_nets)

let test_star_communities () =
  check bool_t "R2 community" true
    (Star.community_of star7 "R2" = Some (Community.make 100 1));
  check bool_t "R6 community" true
    (Star.community_of star7 "R6" = Some (Community.make 104 1));
  check bool_t "hub has none" true (Star.community_of star7 "R1" = None)

let test_star_isp_prefixes () =
  check bool_t "R2 isp prefix" true (Star.isp_prefix star7 "R2" = Some (pfx "10.2.0.0/24"));
  check bool_t "unknown" true (Star.isp_prefix star7 "R99" = None)

let test_topology_json_round_trip () =
  let t = star7.Star.topology in
  match Topology.of_json (Json.of_string_exn (Json.to_string (Topology.to_json t))) with
  | Ok t' -> check bool_t "round trip" true (Topology.equal t t')
  | Error e -> Alcotest.fail e

(* Simple substring helper to avoid extra dependencies. *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_topology_describe () =
  let d = Topology.describe star7.Star.topology in
  check bool_t "mentions connection" true
    (contains ~sub:"Router R1 is connected to router R2" d);
  check bool_t "mentions AS" true (contains ~sub:"Router R3 has AS number 3" d);
  let sd = Star.description star7 in
  check bool_t "mentions customer" true (contains ~sub:"CUSTOMER network" sd);
  check bool_t "mentions isp" true (contains ~sub:"belongs to ISP" sd)

let test_star_invalid_size () =
  Alcotest.check_raises "too small" (Invalid_argument "Star.make: need 2..200 routers")
    (fun () -> ignore (Star.make ~routers:1))

let test_topology_validate_catches () =
  let t = star7.Star.topology in
  let broken =
    {
      t with
      Topology.routers =
        List.map
          (fun (r : Topology.router) ->
            if r.Topology.name = "R2" then { r with Topology.asn = -3 } else r)
          t.Topology.routers;
    }
  in
  match Topology.validate broken with
  | Error errs ->
      check bool_t "mentions AS error" true
        (List.exists (contains ~sub:"non-positive AS") errs)
  | Ok () -> Alcotest.fail "expected validation error"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let any_addr_gen = QCheck2.Gen.map Ipv4.of_int (QCheck2.Gen.int_range 0 0xFFFFFFFF)

let prefix_gen =
  QCheck2.Gen.map2 (fun a l -> Prefix.make a l) any_addr_gen (QCheck2.Gen.int_range 0 32)

let prop_ipv4_round_trip =
  QCheck2.Test.make ~name:"ipv4 to_string/of_string round trip" ~count:500 any_addr_gen
    (fun a -> Ipv4.of_string (Ipv4.to_string a) = Some a)

let prop_prefix_round_trip =
  QCheck2.Test.make ~name:"prefix to_string/of_string round trip" ~count:500 prefix_gen
    (fun p -> Prefix.of_string (Prefix.to_string p) = Some p)

let prop_prefix_subsumption_network =
  QCheck2.Test.make ~name:"prefix contains its own addresses" ~count:500
    (QCheck2.Gen.pair prefix_gen any_addr_gen) (fun (p, a) ->
      let inside = Prefix.contains_addr p a in
      let recomputed = Ipv4.equal (Ipv4.network a (Prefix.len p)) (Prefix.addr p) in
      inside = recomputed)

let prop_prefix_split_partition =
  QCheck2.Test.make ~name:"split halves partition the parent" ~count:500
    (QCheck2.Gen.pair prefix_gen any_addr_gen) (fun (p, a) ->
      match Prefix.split p with
      | None -> Prefix.len p = 32
      | Some (lo, hi) ->
          let in_parent = Prefix.contains_addr p a in
          let in_halves = Prefix.contains_addr lo a || Prefix.contains_addr hi a in
          let in_both = Prefix.contains_addr lo a && Prefix.contains_addr hi a in
          in_parent = in_halves && not in_both)

let prop_json_round_trip =
  let rec value_gen depth =
    let open QCheck2.Gen in
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun n -> Json.Int n) (int_range (-1000000) 1000000);
          map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 10));
        ]
    else
      oneof
        [
          map (fun n -> Json.Int n) (int_range (-1000) 1000);
          map (fun l -> Json.List l) (list_size (int_bound 4) (value_gen (depth - 1)));
          map
            (fun kvs -> Json.Obj kvs)
            (list_size (int_bound 4)
               (pair (string_size ~gen:printable (int_bound 6)) (value_gen (depth - 1))));
        ]
  in
  QCheck2.Test.make ~name:"json print/parse round trip" ~count:300 (value_gen 3)
    (fun v -> Json.of_string_exn (Json.to_string v) = v)

let prop_star_valid =
  QCheck2.Test.make ~name:"every star topology validates" ~count:50
    (QCheck2.Gen.int_range 2 40) (fun n ->
      Topology.validate (Star.make ~routers:n).Star.topology = Ok ())

let prop_star_json_round_trip =
  QCheck2.Test.make ~name:"star topology JSON round trip" ~count:30
    (QCheck2.Gen.int_range 2 20) (fun n ->
      let t = (Star.make ~routers:n).Star.topology in
      match Topology.of_json (Json.of_string_exn (Json.to_string (Topology.to_json t))) with
      | Ok t' -> Topology.equal t t'
      | Error _ -> false)

let prop_community_round_trip =
  QCheck2.Test.make ~name:"community round trip" ~count:300
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 0xFFFF) (QCheck2.Gen.int_bound 0xFFFF))
    (fun (a, v) ->
      let c = Community.make a v in
      Community.of_string (Community.to_string c) = Some c)

let prop_as_path_round_trip =
  QCheck2.Test.make ~name:"as-path round trip" ~count:300
    (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 6) (QCheck2.Gen.int_range 1 65535))
    (fun l ->
      let p = As_path.of_list l in
      As_path.of_string (As_path.to_string p) = Some p)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ipv4_round_trip;
      prop_prefix_round_trip;
      prop_prefix_subsumption_network;
      prop_prefix_split_partition;
      prop_json_round_trip;
      prop_star_valid;
      prop_star_json_round_trip;
      prop_community_round_trip;
      prop_as_path_round_trip;
    ]

let () =
  Alcotest.run "netcore"
    [
      ( "ipv4",
        [
          Alcotest.test_case "parse/print" `Quick test_ipv4_parse_print;
          Alcotest.test_case "rejects malformed" `Quick test_ipv4_reject;
          Alcotest.test_case "octets" `Quick test_ipv4_octets;
          Alcotest.test_case "bit indexing" `Quick test_ipv4_bits;
          Alcotest.test_case "mask and network" `Quick test_ipv4_mask_network;
          Alcotest.test_case "succ wraps" `Quick test_ipv4_succ_wraps;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "normalizes host bits" `Quick test_prefix_normalizes;
          Alcotest.test_case "parse" `Quick test_prefix_parse;
          Alcotest.test_case "contains" `Quick test_prefix_contains;
          Alcotest.test_case "subsumes" `Quick test_prefix_subsumes;
          Alcotest.test_case "split" `Quick test_prefix_split;
          Alcotest.test_case "split host" `Quick test_prefix_split_host;
          Alcotest.test_case "last address" `Quick test_prefix_last;
        ] );
      ( "prefix-range",
        [
          Alcotest.test_case "ge semantics" `Quick test_range_ge;
          Alcotest.test_case "exact semantics" `Quick test_range_exact;
          Alcotest.test_case "invalid bounds" `Quick test_range_bounds_invalid;
          Alcotest.test_case "rendering" `Quick test_range_to_string;
        ] );
      ( "community",
        [
          Alcotest.test_case "parse" `Quick test_community_parse;
          Alcotest.test_case "set rendering" `Quick test_community_set;
        ] );
      ( "as-path",
        [
          Alcotest.test_case "basics" `Quick test_as_path_basics;
          Alcotest.test_case "regex with underscore" `Quick test_as_path_regex;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "iface",
        [
          Alcotest.test_case "naming" `Quick test_iface_names;
          Alcotest.test_case "parsing" `Quick test_iface_parse;
        ] );
      ( "topology",
        [
          Alcotest.test_case "star shape" `Quick test_star_shape;
          Alcotest.test_case "star validates" `Quick test_star_validates;
          Alcotest.test_case "star addressing" `Quick test_star_addressing;
          Alcotest.test_case "star networks" `Quick test_star_networks;
          Alcotest.test_case "star communities" `Quick test_star_communities;
          Alcotest.test_case "star isp prefixes" `Quick test_star_isp_prefixes;
          Alcotest.test_case "json round trip" `Quick test_topology_json_round_trip;
          Alcotest.test_case "describe" `Quick test_topology_describe;
          Alcotest.test_case "invalid size" `Quick test_star_invalid_size;
          Alcotest.test_case "validate catches bad AS" `Quick test_topology_validate_catches;
        ] );
      ("properties", props);
    ]
