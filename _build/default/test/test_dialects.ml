(* Tests for the Cisco and Junos dialect front ends: parsing, printing,
   round trips, targeted diagnostics, and the reference translation. *)

open Netcore
open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let pfx = Prefix.of_string_exn
let ip = Ipv4.of_string_exn

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let diag_with ~sub diags = List.exists (fun d -> contains ~sub (Diag.to_string d)) diags

let border_ir, border_diags = Cisco.Parser.parse Cisco.Samples.border_router

(* ------------------------------------------------------------------ *)
(* Cisco parsing                                                       *)
(* ------------------------------------------------------------------ *)

let test_cisco_parses_clean () =
  check int_t "no diagnostics"
    0
    (List.length border_diags);
  check string_t "hostname" "border1" border_ir.Config_ir.hostname;
  check int_t "interfaces" 3 (List.length border_ir.Config_ir.interfaces);
  check int_t "prefix lists" 3 (List.length border_ir.Config_ir.prefix_lists);
  check int_t "route maps" 4 (List.length border_ir.Config_ir.route_maps)

let test_cisco_bgp_block () =
  match border_ir.Config_ir.bgp with
  | None -> Alcotest.fail "expected bgp"
  | Some b ->
      check int_t "asn" 65001 b.Config_ir.asn;
      check int_t "neighbors" 2 (List.length b.Config_ir.neighbors);
      check int_t "networks" 1 (List.length b.Config_ir.networks);
      check int_t "redistributions" 1 (List.length b.Config_ir.redistributions);
      let provider =
        Option.get (Config_ir.find_neighbor b (ip "2.3.4.5"))
      in
      check bool_t "import" true (provider.Config_ir.import_policy = Some "from_provider");
      check bool_t "export" true (provider.Config_ir.export_policy = Some "to_provider");
      check int_t "remote as" 65002 provider.Config_ir.remote_as

let test_cisco_ospf_block () =
  match border_ir.Config_ir.ospf with
  | None -> Alcotest.fail "expected ospf"
  | Some o ->
      check int_t "networks" 2 (List.length o.Config_ir.networks);
      let lo =
        List.find
          (fun (oi : Config_ir.ospf_interface) -> Iface.is_loopback oi.iface)
          o.Config_ir.interfaces
      in
      check bool_t "loopback cost merged" true (lo.Config_ir.cost = Some 1);
      check bool_t "loopback passive" true lo.Config_ir.passive

let test_cisco_prefix_list_ge () =
  let l = Option.get (Config_ir.find_prefix_list border_ir "our-networks") in
  check bool_t "matches /24" true (Prefix_list.matches l (pfx "1.2.3.0/24"));
  check bool_t "matches /28" true (Prefix_list.matches l (pfx "1.2.3.16/28"));
  check bool_t "rejects /16" false (Prefix_list.matches l (pfx "1.2.0.0/16"))

let test_cisco_round_trip () =
  let printed = Cisco.Printer.print border_ir in
  let reparsed, diags = Cisco.Parser.parse printed in
  check int_t "no diagnostics on canonical output" 0 (List.length diags);
  check bool_t "round trip" true (Config_ir.equal border_ir reparsed)

let test_cisco_lint_clean () =
  check int_t "no lint findings" 0 (List.length (Cisco.Lint.check border_ir))

(* Targeted diagnostics *)

let test_cisco_match_community_literal () =
  let text =
    "route-map FILTER_ROUTES permit 10\n match community 100:1\n" in
  let _, diags = Cisco.Parser.parse text in
  check bool_t "flags literal community" true
    (diag_with ~sub:"'match community 100:1' is invalid" diags)

let test_cisco_cli_keyword () =
  let _, diags = Cisco.Parser.parse "configure terminal\nhostname r1\nend\n" in
  check bool_t "flags configure terminal" true
    (diag_with ~sub:"interactive CLI command" diags);
  check bool_t "flags end" true
    (List.length (List.filter (fun d -> contains ~sub:"CLI command" (Diag.to_string d)) diags) >= 2)

let test_cisco_misplaced_neighbor () =
  let text =
    String.concat "\n"
      [
        "router bgp 1";
        " neighbor 1.0.0.2 remote-as 2";
        "!";
        "neighbor 1.0.0.2 route-map FOO out";
        "";
      ]
  in
  let ir, diags = Cisco.Parser.parse text in
  check bool_t "flags misplaced neighbor" true
    (diag_with ~sub:"only valid inside a 'router bgp'" diags);
  (* And the attachment must NOT have happened. *)
  let b = Option.get ir.Config_ir.bgp in
  let n = Option.get (Config_ir.find_neighbor b (ip "1.0.0.2")) in
  check bool_t "no export attached" true (n.Config_ir.export_policy = None)

let test_cisco_community_list_regex () =
  let _, diags =
    Cisco.Parser.parse "ip community-list standard COMM_LIST_R2_OUT permit .+\n"
  in
  check bool_t "flags regex in standard list" true
    (diag_with ~sub:"wrong syntax" diags)

let test_cisco_prefix_list_missing_seq () =
  let _, diags = Cisco.Parser.parse "ip prefix-list pl permit 1.2.3.0/24\n" in
  check bool_t "asks for seq" true (diag_with ~sub:"missing 'seq" diags)

let test_cisco_neighbor_without_remote_as () =
  let text = "router bgp 1\n neighbor 9.9.9.9 route-map X in\n" in
  let _, diags = Cisco.Parser.parse text in
  check bool_t "warns remote-as" true (diag_with ~sub:"no remote-as" diags)

let test_cisco_set_community_default_replaces () =
  let text =
    "route-map ADD_COMMUNITY permit 10\n set community 100:1\n" in
  let ir, diags = Cisco.Parser.parse text in
  check int_t "parses fine (it is valid, just dangerous)" 0 (List.length diags);
  let m = Option.get (Config_ir.find_route_map ir "ADD_COMMUNITY") in
  match (List.hd m.Route_map.entries).Route_map.sets with
  | [ Route_map.Set_community { additive; _ } ] ->
      check bool_t "non-additive" false additive
  | _ -> Alcotest.fail "expected one set community"

let test_cisco_lint_dangling () =
  let text =
    String.concat "\n"
      [
        "route-map m permit 10";
        " match ip address prefix-list nope";
        "!";
        "router bgp 1";
        " neighbor 1.0.0.2 remote-as 2";
        " neighbor 1.0.0.2 route-map missing-map in";
        "";
      ]
  in
  let ir, _ = Cisco.Parser.parse text in
  let lints = Cisco.Lint.check ir in
  check bool_t "dangling prefix list" true
    (diag_with ~sub:"undefined prefix-list nope" lints);
  check bool_t "dangling route map" true
    (diag_with ~sub:"undefined route-map missing-map" lints);
  check bool_t "unattached map" true
    (diag_with ~sub:"route-map m is defined but not attached" lints)

(* ------------------------------------------------------------------ *)
(* Junos                                                               *)
(* ------------------------------------------------------------------ *)

let junos_ir_of_border = Juniper.Translate.of_cisco_ir border_ir
let junos_text = Juniper.Printer.print junos_ir_of_border
let junos_reparsed, junos_diags = Juniper.Parser.parse junos_text

let test_junos_prints_and_parses_clean () =
  if junos_diags <> [] then
    Alcotest.failf "unexpected diagnostics:\n%s"
      (String.concat "\n" (List.map Diag.to_string junos_diags))

let test_junos_structure () =
  check string_t "hostname" "border1" junos_reparsed.Config_ir.hostname;
  check int_t "interfaces" 3 (List.length junos_reparsed.Config_ir.interfaces);
  let b = Option.get junos_reparsed.Config_ir.bgp in
  check int_t "asn" 65001 b.Config_ir.asn;
  check int_t "neighbors" 2 (List.length b.Config_ir.neighbors);
  check bool_t "network announced" true
    (List.exists (Prefix.equal (pfx "1.2.3.0/24")) b.Config_ir.networks);
  let n = Option.get (Config_ir.find_neighbor b (ip "2.3.4.5")) in
  check bool_t "local-as" true (n.Config_ir.local_as = Some 65001)

let test_junos_ospf_translation () =
  let o = Option.get junos_reparsed.Config_ir.ospf in
  (* Ethernet0/1 (2.3.4.1) is covered by no OSPF network statement. *)
  check int_t "two ospf interfaces" 2 (List.length o.Config_ir.interfaces);
  let lo =
    List.find (fun (oi : Config_ir.ospf_interface) -> Iface.is_loopback oi.iface)
      o.Config_ir.interfaces
  in
  check bool_t "loopback metric explicit 1" true (lo.Config_ir.cost = Some 1);
  check bool_t "loopback passive" true lo.Config_ir.passive;
  let eth =
    List.find (fun (oi : Config_ir.ospf_interface) -> not (Iface.is_loopback oi.iface))
      o.Config_ir.interfaces
  in
  check bool_t "ethernet metric uses cisco default" true (eth.Config_ir.cost = Some 10)

let test_junos_import_policy_equivalent () =
  (* The translated from_customer must behave exactly like the Cisco one —
     including the ge/le prefix ranges compiled into route-filters. *)
  let env_a = Eval.env_of_config border_ir in
  let env_b = Eval.env_of_config junos_reparsed in
  let m_a = Option.get (Config_ir.find_route_map border_ir "from_customer") in
  let m_b = Option.get (Config_ir.find_route_map junos_reparsed "from_customer") in
  check bool_t "semantically equivalent" true
    (Symbolic.Policy_diff.equivalent ~env_a ~env_b m_a m_b)

let test_junos_export_policy_scoped () =
  (* After folding redistribution, the junos to_provider must accept the
     ospf routes ospf_to_bgp admits and still deny other ospf routes. *)
  let env = Eval.env_of_config junos_reparsed in
  let m = Option.get (Config_ir.find_route_map junos_reparsed "to_provider") in
  let ospf_route p =
    Route.make ~source:Route.Ospf (pfx p)
  in
  (match Eval.eval env m (ospf_route "1.2.3.0/24") with
  | Eval.Permitted _ -> ()
  | Eval.Denied -> Alcotest.fail "redistributed ospf route should be accepted");
  check bool_t "other ospf routes rejected" true
    (Eval.eval env m (ospf_route "9.9.9.0/24") = Eval.Denied);
  (* And bgp routes keep the original behaviour: our-networks get MED 50. *)
  match Eval.eval env m (Route.make (pfx "1.2.3.0/25")) with
  | Eval.Permitted r -> check int_t "med set" 50 r.Route.med
  | Eval.Denied -> Alcotest.fail "bgp route should be accepted"

let test_junos_round_trip_stable () =
  (* print . parse . print is a fixpoint. *)
  let text2 = Juniper.Printer.print junos_reparsed in
  let reparsed2, diags2 = Juniper.Parser.parse text2 in
  check int_t "no diagnostics" 0 (List.length diags2);
  check bool_t "stable" true (Config_ir.equal junos_reparsed reparsed2)

let test_junos_missing_local_as_warning () =
  (* Strip the autonomous-system statement and all local-as lines: the
     parser must produce the Table 2 "missing local AS" warning. *)
  let lines = String.split_on_char '\n' junos_text in
  let stripped =
    List.filter
      (fun l ->
        not (contains ~sub:"autonomous-system" l || contains ~sub:"local-as" l))
      lines
    |> String.concat "\n"
  in
  let _, diags = Juniper.Parser.parse stripped in
  check bool_t "warns about local AS" true (diag_with ~sub:"no local AS" diags)

let test_junos_invalid_prefix_range_shorthand () =
  let text =
    String.concat "\n"
      [
        "policy-options {";
        "    prefix-list our-networks {";
        "        1.2.3.0/24-32;";
        "    }";
        "}";
        "";
      ]
  in
  let _, diags = Juniper.Parser.parse text in
  check bool_t "targeted error" true
    (diag_with ~sub:"not valid Juniper syntax" diags)

let test_junos_term_without_action () =
  let text =
    String.concat "\n"
      [
        "policy-options {";
        "    policy-statement p {";
        "        term t10 {";
        "            then {";
        "                metric 5;";
        "            }";
        "        }";
        "    }";
        "}";
        "";
      ]
  in
  let _, diags = Juniper.Parser.parse text in
  check bool_t "warns no accept/reject" true (diag_with ~sub:"no accept/reject" diags)

let test_junos_route_filter_ranges () =
  let l =
    Prefix_list.make "l"
      [
        Prefix_list.entry 5 (Prefix_range.make (pfx "1.2.3.0/24") ~ge:25 ~le:30);
        Prefix_list.entry ~action:Action.Deny 10 (Prefix_range.exact (pfx "2.0.0.0/8"));
        Prefix_list.entry 15 (Prefix_range.orlonger (pfx "2.0.0.0/8"));
      ]
  in
  let filters = Juniper.Printer.route_filters_of_prefix_list l in
  check bool_t "has prefix-length-range" true
    (List.exists (fun (p, m) -> p = "1.2.3.0/24" && m = "prefix-length-range /25-/30") filters);
  (* The deny carve-out of 2.0.0.0/8 exact must be honoured. *)
  check bool_t "no exact 2.0.0.0/8" true
    (List.for_all (fun (p, m) -> not (p = "2.0.0.0/8" && (m = "orlonger" || m = "exact"))) filters)

let test_junos_unbalanced_braces () =
  let _, diags = Juniper.Parser.parse "system {\n host-name r1;\n" in
  check bool_t "reports something" true (diags <> [])

(* ------------------------------------------------------------------ *)
(* The larger edge-router sample                                       *)
(* ------------------------------------------------------------------ *)

let edge_ir, edge_diags = Cisco.Parser.parse Cisco.Samples.edge_router

let test_edge_parses_clean () =
  check int_t "no diagnostics" 0 (List.length edge_diags);
  check int_t "lint clean" 0 (List.length (Cisco.Lint.check edge_ir));
  let b = Option.get edge_ir.Config_ir.bgp in
  check int_t "three neighbors" 3 (List.length b.Config_ir.neighbors);
  check int_t "one static" 1 (List.length edge_ir.Config_ir.statics);
  check int_t "one as-path list" 1 (List.length edge_ir.Config_ir.as_path_lists);
  check int_t "one acl" 1 (List.length edge_ir.Config_ir.acls)

let test_edge_round_trip () =
  let reparsed, diags = Cisco.Parser.parse (Cisco.Printer.print edge_ir) in
  check int_t "no diagnostics" 0 (List.length diags);
  check bool_t "round trip" true (Config_ir.equal edge_ir reparsed)

let test_edge_translation_clean () =
  let junos_text = Juniper.Printer.print (Juniper.Translate.of_cisco_ir edge_ir) in
  let translation, diags = Juniper.Parser.parse junos_text in
  check int_t "parses clean" 0 (List.length diags);
  let findings = Campion.Differ.compare ~original:edge_ir ~translation in
  if findings <> [] then
    Alcotest.failf "unexpected findings:\n%s"
      (String.concat "\n" (List.map Campion.Differ.finding_to_string findings))

let test_edge_translation_loop_converges () =
  List.iter
    (fun seed ->
      let r =
        Cosynth.Driver.run_translation ~seed ~cisco_text:Cisco.Samples.edge_router ()
      in
      check bool_t (Printf.sprintf "seed %d verified" seed) true r.Cosynth.Driver.verified)
    [ 31; 32; 33 ]

(* ------------------------------------------------------------------ *)
(* Cross-dialect property                                              *)
(* ------------------------------------------------------------------ *)

let range_gen =
  let open QCheck2.Gen in
  oneofl [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "192.168.0.0/16"; "0.0.0.0/0" ]
  >>= fun base ->
  let base = pfx base in
  int_range (Prefix.len base) 32 >>= fun ge ->
  int_range ge 32 >>= fun le ->
  bool >>= fun permit ->
  return
    (Prefix_list.entry
       ~action:(if permit then Action.Permit else Action.Deny)
       0 (Prefix_range.make base ~ge ~le))

let prefix_list_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 4) range_gen >>= fun entries ->
  let entries = List.mapi (fun i (e : Prefix_list.entry) -> { e with Prefix_list.seq = (i + 1) * 5 }) entries in
  return (Prefix_list.make "gen" entries)

let prop_route_filters_preserve_semantics =
  (* The Junos route-filter compilation of any prefix list matches exactly
     the prefixes the list permits. *)
  QCheck2.Test.make ~name:"route-filter compilation preserves prefix list semantics"
    ~count:200
    QCheck2.Gen.(
      pair prefix_list_gen
        (oneofl
           [
             "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "10.1.2.128/25";
             "192.168.0.0/16"; "192.168.1.0/24"; "0.0.0.0/0"; "10.1.2.3/32";
           ]))
    (fun (l, q) ->
      let q = pfx q in
      let filters = Juniper.Printer.route_filters_of_prefix_list l in
      let ranges =
        List.map
          (fun (p, m) ->
            let base = pfx p in
            match String.split_on_char ' ' m with
            | [ "exact" ] -> Prefix_range.exact base
            | [ "orlonger" ] -> Prefix_range.orlonger base
            | [ "upto"; n ] ->
                Prefix_range.le base
                  (int_of_string (String.sub n 1 (String.length n - 1)))
            | [ "prefix-length-range"; r ] -> (
                match String.split_on_char '-' r with
                | [ a; b ] ->
                    Prefix_range.make base
                      ~ge:(int_of_string (String.sub a 1 (String.length a - 1)))
                      ~le:(int_of_string (String.sub b 1 (String.length b - 1)))
                | _ -> assert false)
            | _ -> assert false)
          filters
      in
      let junos_matches = List.exists (fun r -> Prefix_range.matches r q) ranges in
      junos_matches = Prefix_list.matches l q)

let prop_cisco_round_trip_route_maps =
  (* Printing then parsing a config containing a random route map is the
     identity on the IR. *)
  let comm = Community.of_string_exn in
  let match_gen =
    QCheck2.Gen.oneofl
      [
        Route_map.Match_prefix_list "pl";
        Route_map.Match_community_list "cl";
        Route_map.Match_as_path "al";
        Route_map.Match_source_protocol Route.Ospf;
        Route_map.Match_med 7;
      ]
  in
  let set_gen =
    QCheck2.Gen.oneofl
      [
        Route_map.Set_med 50;
        Route_map.Set_local_pref 200;
        Route_map.Set_community { communities = [ comm "100:1" ]; additive = true };
        Route_map.Set_community { communities = [ comm "100:1"; comm "101:1" ]; additive = false };
        Route_map.Set_community_delete "cl";
        Route_map.Set_next_hop (ip "9.9.9.9");
        Route_map.Set_as_path_prepend [ 1; 1 ];
      ]
  in
  let entry_gen =
    let open QCheck2.Gen in
    bool >>= fun permit ->
    list_size (int_bound 2) match_gen >>= fun matches ->
    list_size (int_bound 2) set_gen >>= fun sets ->
    return (fun seq ->
        Route_map.entry
          ~action:(if permit then Action.Permit else Action.Deny)
          ~matches ~sets seq)
  in
  let config_gen =
    let open QCheck2.Gen in
    list_size (int_range 1 3) entry_gen >>= fun mk_entries ->
    let entries = List.mapi (fun i mk -> mk ((i + 1) * 10)) mk_entries in
    let base = Config_ir.empty "r" in
    return
      {
        base with
        Config_ir.prefix_lists =
          [ Prefix_list.make "pl" [ Prefix_list.entry 5 (Prefix_range.exact (pfx "1.2.3.0/24")) ] ];
        community_lists = [ Community_list.make "cl" [ Community_list.entry [ comm "100:1" ] ] ];
        as_path_lists = [ As_path_list.make "al" [ As_path_list.entry "^1_" ] ];
        route_maps = [ Route_map.make "m" entries ];
      }
  in
  QCheck2.Test.make ~name:"cisco print/parse round trip on random route maps" ~count:200
    config_gen (fun cfg ->
      let printed = Cisco.Printer.print cfg in
      let reparsed, diags = Cisco.Parser.parse printed in
      diags = [] && Config_ir.equal cfg reparsed)

let prop_junos_print_parse_fixpoint =
  (* For any IR built from the shared generator, printing as Junos and
     parsing back reaches a fixpoint after one round and never yields
     diagnostics. (Ranged prefix lists are renamed into synthesized
     route-filter lists on the first round, hence fixpoint rather than
     identity.) *)
  let comm = Community.of_string_exn in
  let match_gen =
    QCheck2.Gen.oneofl
      [
        Route_map.Match_prefix_list "pl";
        Route_map.Match_prefix_list "ranged";
        Route_map.Match_community_list "cl";
        Route_map.Match_source_protocol Route.Bgp;
        Route_map.Match_med 7;
      ]
  in
  let set_gen =
    QCheck2.Gen.oneofl
      [
        Route_map.Set_med 50;
        Route_map.Set_local_pref 200;
        Route_map.Set_community { communities = [ comm "100:1" ]; additive = true };
        Route_map.Set_community { communities = [ comm "100:1" ]; additive = false };
        Route_map.Set_next_hop (ip "9.9.9.9");
        Route_map.Set_as_path_prepend [ 1; 1 ];
      ]
  in
  let entry_gen =
    let open QCheck2.Gen in
    bool >>= fun permit ->
    list_size (int_bound 2) match_gen >>= fun matches ->
    list_size (int_bound 2) set_gen >>= fun sets ->
    return (fun seq ->
        Route_map.entry
          ~action:(if permit then Action.Permit else Action.Deny)
          ~matches ~sets seq)
  in
  let config_gen =
    let open QCheck2.Gen in
    list_size (int_range 1 3) entry_gen >>= fun mk_entries ->
    let entries = List.mapi (fun i mk -> mk ((i + 1) * 10)) mk_entries in
    let base = Config_ir.empty "r" in
    return
      {
        base with
        Config_ir.prefix_lists =
          [
            Prefix_list.make "pl" [ Prefix_list.entry 5 (Prefix_range.exact (pfx "1.2.3.0/24")) ];
            Prefix_list.make "ranged"
              [ Prefix_list.entry 5 (Prefix_range.make (pfx "10.0.0.0/8") ~ge:16 ~le:24) ];
          ];
        community_lists = [ Community_list.make "cl" [ Community_list.entry [ comm "100:1" ] ] ];
        route_maps = [ Route_map.make "m" entries ];
        bgp =
          Some
            {
              Config_ir.asn = 1;
              router_id = Some (ip "1.1.1.1");
              networks = [ pfx "1.2.3.0/24" ];
              neighbors =
                [
                  Config_ir.neighbor ~local_as:1 ~import_policy:"m" (ip "2.3.4.5")
                    ~remote_as:2;
                ];
              redistributions = [];
            };
      }
  in
  QCheck2.Test.make ~name:"junos print/parse reaches a clean fixpoint" ~count:150
    config_gen (fun cfg ->
      let a, d1 = Juniper.Parser.parse (Juniper.Printer.print cfg) in
      let b, d2 = Juniper.Parser.parse (Juniper.Printer.print a) in
      d1 = [] && d2 = [] && Config_ir.equal a b)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_route_filters_preserve_semantics;
      prop_cisco_round_trip_route_maps;
      prop_junos_print_parse_fixpoint;
    ]

let () =
  Alcotest.run "dialects"
    [
      ( "cisco-parse",
        [
          Alcotest.test_case "reference config parses clean" `Quick test_cisco_parses_clean;
          Alcotest.test_case "bgp block" `Quick test_cisco_bgp_block;
          Alcotest.test_case "ospf block" `Quick test_cisco_ospf_block;
          Alcotest.test_case "prefix list ge" `Quick test_cisco_prefix_list_ge;
          Alcotest.test_case "round trip" `Quick test_cisco_round_trip;
          Alcotest.test_case "lint clean" `Quick test_cisco_lint_clean;
        ] );
      ( "cisco-diagnostics",
        [
          Alcotest.test_case "match community literal" `Quick
            test_cisco_match_community_literal;
          Alcotest.test_case "cli keywords" `Quick test_cisco_cli_keyword;
          Alcotest.test_case "misplaced neighbor" `Quick test_cisco_misplaced_neighbor;
          Alcotest.test_case "community list regex" `Quick test_cisco_community_list_regex;
          Alcotest.test_case "prefix list missing seq" `Quick
            test_cisco_prefix_list_missing_seq;
          Alcotest.test_case "neighbor without remote-as" `Quick
            test_cisco_neighbor_without_remote_as;
          Alcotest.test_case "set community replaces by default" `Quick
            test_cisco_set_community_default_replaces;
          Alcotest.test_case "lint dangling refs" `Quick test_cisco_lint_dangling;
        ] );
      ( "junos",
        [
          Alcotest.test_case "translation prints and parses clean" `Quick
            test_junos_prints_and_parses_clean;
          Alcotest.test_case "structure" `Quick test_junos_structure;
          Alcotest.test_case "ospf translation" `Quick test_junos_ospf_translation;
          Alcotest.test_case "import policy equivalent" `Quick
            test_junos_import_policy_equivalent;
          Alcotest.test_case "export policy scoped" `Quick test_junos_export_policy_scoped;
          Alcotest.test_case "round trip stable" `Quick test_junos_round_trip_stable;
          Alcotest.test_case "missing local-as warning" `Quick
            test_junos_missing_local_as_warning;
          Alcotest.test_case "invalid range shorthand" `Quick
            test_junos_invalid_prefix_range_shorthand;
          Alcotest.test_case "term without action" `Quick test_junos_term_without_action;
          Alcotest.test_case "route-filter ranges" `Quick test_junos_route_filter_ranges;
          Alcotest.test_case "unbalanced braces" `Quick test_junos_unbalanced_braces;
        ] );
      ( "edge-router",
        [
          Alcotest.test_case "parses clean" `Quick test_edge_parses_clean;
          Alcotest.test_case "round trip" `Quick test_edge_round_trip;
          Alcotest.test_case "translation clean" `Quick test_edge_translation_clean;
          Alcotest.test_case "translation loop converges" `Slow
            test_edge_translation_loop_converges;
        ] );
      ("properties", props);
    ]
