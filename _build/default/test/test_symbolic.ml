(* Tests for the symbolic route-space engine, centred on agreement between
   the symbolic semantics and the concrete evaluator. *)

open Netcore
open Policy
open Symbolic

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let pfx = Prefix.of_string_exn
let comm = Community.of_string_exn

(* ------------------------------------------------------------------ *)
(* Len_set                                                             *)
(* ------------------------------------------------------------------ *)

let test_len_set_basics () =
  let s = Len_set.range 24 32 in
  check bool_t "mem 24" true (Len_set.mem 24 s);
  check bool_t "mem 32" true (Len_set.mem 32 s);
  check bool_t "not 23" false (Len_set.mem 23 s);
  check int_t "cardinal" 9 (Len_set.cardinal s);
  check bool_t "min" true (Len_set.min_elt s = Some 24);
  check bool_t "max" true (Len_set.max_elt s = Some 32);
  check bool_t "empty range" true (Len_set.is_empty (Len_set.range 5 4));
  check bool_t "full card" true (Len_set.cardinal Len_set.full = 33)

let test_len_set_algebra () =
  let a = Len_set.range 8 16 and b = Len_set.range 12 24 in
  check bool_t "inter" true (Len_set.equal (Len_set.inter a b) (Len_set.range 12 16));
  check bool_t "union" true (Len_set.equal (Len_set.union a b) (Len_set.range 8 24));
  check bool_t "diff" true (Len_set.equal (Len_set.diff a b) (Len_set.range 8 11));
  check bool_t "subset" true (Len_set.subset (Len_set.range 10 12) a)

(* ------------------------------------------------------------------ *)
(* Prefix_space                                                        *)
(* ------------------------------------------------------------------ *)

let space_of s = Prefix_space.exact (pfx s)

let test_space_exact_membership () =
  let s = space_of "1.2.3.0/24" in
  check bool_t "member" true (Prefix_space.mem (pfx "1.2.3.0/24") s);
  check bool_t "longer not member" false (Prefix_space.mem (pfx "1.2.3.0/25") s)

let test_space_orlonger () =
  let s = Prefix_space.of_range (Prefix_range.orlonger (pfx "10.0.0.0/8")) in
  check bool_t "self" true (Prefix_space.mem (pfx "10.0.0.0/8") s);
  check bool_t "deeper" true (Prefix_space.mem (pfx "10.1.0.0/16") s);
  check bool_t "host" true (Prefix_space.mem (pfx "10.9.9.9/32") s);
  check bool_t "shorter" false (Prefix_space.mem (pfx "0.0.0.0/0") s);
  check bool_t "outside" false (Prefix_space.mem (pfx "11.0.0.0/8") s)

let test_space_diff_peels () =
  (* Remove a /16 subtree from a /8 subtree: the /16's prefixes vanish but
     siblings and path prefixes stay. *)
  let big = Prefix_space.of_range (Prefix_range.orlonger (pfx "10.0.0.0/8")) in
  let hole = Prefix_space.of_range (Prefix_range.orlonger (pfx "10.1.0.0/16")) in
  let s = Prefix_space.diff big hole in
  check bool_t "hole gone" false (Prefix_space.mem (pfx "10.1.0.0/16") s);
  check bool_t "deep hole gone" false (Prefix_space.mem (pfx "10.1.2.0/24") s);
  check bool_t "sibling stays" true (Prefix_space.mem (pfx "10.2.0.0/16") s);
  check bool_t "path prefix stays" true (Prefix_space.mem (pfx "10.0.0.0/12") s);
  check bool_t "root stays" true (Prefix_space.mem (pfx "10.0.0.0/8") s)

let test_space_diff_lengths_only () =
  let all24up = Prefix_space.of_range (Prefix_range.ge (pfx "1.2.3.0/24") 24) in
  let exact24 = space_of "1.2.3.0/24" in
  let s = Prefix_space.diff all24up exact24 in
  check bool_t "24 gone" false (Prefix_space.mem (pfx "1.2.3.0/24") s);
  check bool_t "25 stays" true (Prefix_space.mem (pfx "1.2.3.0/25") s)

let test_space_sample () =
  let s = Prefix_space.of_range (Prefix_range.make (pfx "1.2.3.0/24") ~ge:25 ~le:30) in
  (match Prefix_space.sample s with
  | Some p ->
      check bool_t "sample inside" true (Prefix_space.mem p s);
      check int_t "sample shortest" 25 (Prefix.len p)
  | None -> Alcotest.fail "expected sample");
  check bool_t "empty sample" true (Prefix_space.sample Prefix_space.empty = None)

let test_space_full_minus_full_empty () =
  check bool_t "full \\ full" true
    (Prefix_space.is_empty (Prefix_space.diff Prefix_space.full Prefix_space.full));
  check bool_t "full = full" true (Prefix_space.equal Prefix_space.full Prefix_space.full)

(* Property: membership agrees with set algebra on random spaces. *)

(* Draw prefixes from a compact pool so intersections are non-trivial. *)
let pooled_prefix_gen =
  let pool =
    [
      "0.0.0.0/0"; "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "10.1.2.128/25";
      "10.2.0.0/16"; "11.0.0.0/8"; "10.1.2.0/25"; "10.1.3.0/24"; "10.1.2.4/30";
      "10.1.2.4/32"; "10.128.0.0/9";
    ]
  in
  QCheck2.Gen.map (fun i -> pfx (List.nth pool i)) (QCheck2.Gen.int_bound (List.length pool - 1))

let range_gen =
  let open QCheck2.Gen in
  pooled_prefix_gen >>= fun base ->
  int_range (Prefix.len base) 32 >>= fun ge ->
  int_range ge 32 >>= fun le -> return (Prefix_range.make base ~ge ~le)

let space_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 4) range_gen >>= fun ranges ->
  return (Prefix_space.of_ranges ranges)

let query_gen =
  let open QCheck2.Gen in
  pooled_prefix_gen >>= fun base ->
  int_range (Prefix.len base) 32 >>= fun l -> return (Prefix.make (Prefix.addr base) l)

let prop_space_union =
  QCheck2.Test.make ~name:"space union membership" ~count:400
    QCheck2.Gen.(triple space_gen space_gen query_gen) (fun (a, b, q) ->
      Prefix_space.mem q (Prefix_space.union a b)
      = (Prefix_space.mem q a || Prefix_space.mem q b))

let prop_space_inter =
  QCheck2.Test.make ~name:"space inter membership" ~count:400
    QCheck2.Gen.(triple space_gen space_gen query_gen) (fun (a, b, q) ->
      Prefix_space.mem q (Prefix_space.inter a b)
      = (Prefix_space.mem q a && Prefix_space.mem q b))

let prop_space_diff =
  QCheck2.Test.make ~name:"space diff membership" ~count:400
    QCheck2.Gen.(triple space_gen space_gen query_gen) (fun (a, b, q) ->
      Prefix_space.mem q (Prefix_space.diff a b)
      = (Prefix_space.mem q a && not (Prefix_space.mem q b)))

let prop_space_sample_sound =
  QCheck2.Test.make ~name:"space sample is a member" ~count:400 space_gen (fun s ->
      match Prefix_space.sample s with
      | Some p -> Prefix_space.mem p s
      | None -> Prefix_space.is_empty s)

let prop_space_diff_then_union_restores =
  QCheck2.Test.make ~name:"(a\\b) U (a^b) = a" ~count:200
    QCheck2.Gen.(pair space_gen space_gen) (fun (a, b) ->
      let rebuilt =
        Prefix_space.union (Prefix_space.diff a b) (Prefix_space.inter a b)
      in
      Prefix_space.equal rebuilt a)

(* ------------------------------------------------------------------ *)
(* Int_constr / Comm_constr                                            *)
(* ------------------------------------------------------------------ *)

let test_int_constr () =
  check bool_t "eq inter eq" true (Int_constr.inter (Int_constr.eq 5) (Int_constr.eq 5) = Some (Int_constr.eq 5));
  check bool_t "eq inter other" true (Int_constr.inter (Int_constr.eq 5) (Int_constr.eq 6) = None);
  check bool_t "eq inter neq" true
    (Int_constr.inter (Int_constr.eq 5) (Int_constr.neq [ 5 ]) = None);
  check int_t "sample avoids neq" 2 (Int_constr.sample (Int_constr.neq [ 0; 1 ]));
  check bool_t "complement of eq" true
    (Int_constr.complement (Int_constr.eq 3) = [ Int_constr.neq [ 3 ] ]);
  check bool_t "satisfies" true (Int_constr.satisfies 7 (Int_constr.neq [ 1; 2 ]))

let test_comm_constr () =
  let c1 = Comm_constr.require (comm "100:1") in
  let c2 = Comm_constr.forbid (comm "100:1") in
  check bool_t "contradiction" true (Comm_constr.inter c1 c2 = None);
  let both =
    Comm_constr.inter (Comm_constr.require (comm "100:1")) (Comm_constr.require (comm "101:1"))
  in
  (match both with
  | Some c ->
      check bool_t "sample has both" true
        (Comm_constr.satisfies (Comm_constr.sample c) c);
      check bool_t "one is not enough" false
        (Comm_constr.satisfies (Community.Set.singleton (comm "100:1")) c)
  | None -> Alcotest.fail "expected satisfiable");
  (* complement of (must 100:1) is (must_not 100:1) *)
  match Comm_constr.complement c1 with
  | [ piece ] ->
      check bool_t "complement excludes" false
        (Comm_constr.satisfies (Community.Set.singleton (comm "100:1")) piece);
      check bool_t "complement admits empty" true
        (Comm_constr.satisfies Community.Set.empty piece)
  | _ -> Alcotest.fail "expected one complement piece"

(* ------------------------------------------------------------------ *)
(* Guards and transfer vs concrete eval                                *)
(* ------------------------------------------------------------------ *)

let comms_pool = [ comm "100:1"; comm "101:1"; comm "102:1" ]

let env =
  {
    Eval.prefix_lists =
      [
        Prefix_list.make "p24"
          [ Prefix_list.entry 5 (Prefix_range.ge (pfx "1.2.3.0/24") 24) ];
        Prefix_list.make "mixed"
          [
            Prefix_list.entry ~action:Action.Deny 5
              (Prefix_range.exact (pfx "10.1.0.0/16"));
            Prefix_list.entry 10 (Prefix_range.orlonger (pfx "10.0.0.0/8"));
          ];
      ];
    community_lists =
      [
        Community_list.make "c0" [ Community_list.entry [ comm "100:1" ] ];
        Community_list.make "c1" [ Community_list.entry [ comm "101:1" ] ];
        Community_list.make "cboth"
          [ Community_list.entry [ comm "100:1"; comm "101:1" ] ];
        Community_list.make "cany"
          [
            Community_list.entry [ comm "100:1" ];
            Community_list.entry [ comm "101:1" ];
          ];
      ];
    as_path_lists = [];
  }

let test_guard_prefix_list_deny_carveout () =
  let l = List.hd (List.tl env.Eval.prefix_lists) in
  let s = Guard.compile_prefix_list l in
  check bool_t "denied exact absent" false (Prefix_space.mem (pfx "10.1.0.0/16") s);
  check bool_t "longer than denied present" true (Prefix_space.mem (pfx "10.1.2.0/24") s);
  check bool_t "others present" true (Prefix_space.mem (pfx "10.2.0.0/16") s)

let test_guard_community_list_compilation () =
  let cl =
    List.find (fun (l : Community_list.t) -> l.name = "cany") env.Eval.community_lists
  in
  let cubes = Guard.compile_community_list cl in
  let sat set = List.exists (Comm_constr.satisfies set) cubes in
  check bool_t "100:1 matches" true (sat (Community.Set.singleton (comm "100:1")));
  check bool_t "101:1 matches" true (sat (Community.Set.singleton (comm "101:1")));
  check bool_t "empty does not" false (sat Community.Set.empty)

(* Random route maps over the pools above. *)

let match_gen =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.oneofl
        [
          Route_map.Match_prefix_list "p24";
          Route_map.Match_prefix_list "mixed";
          Route_map.Match_community_list "c0";
          Route_map.Match_community_list "c1";
          Route_map.Match_community_list "cboth";
          Route_map.Match_community_list "cany";
          Route_map.Match_source_protocol Route.Bgp;
          Route_map.Match_source_protocol Route.Ospf;
          Route_map.Match_med 5;
          Route_map.Match_med 10;
        ];
    ]

let set_gen =
  QCheck2.Gen.oneofl
    [
      Route_map.Set_med 50;
      Route_map.Set_local_pref 200;
      Route_map.Set_community { communities = [ comm "102:1" ]; additive = true };
      Route_map.Set_community { communities = [ comm "102:1" ]; additive = false };
    ]

let entry_gen seq =
  let open QCheck2.Gen in
  bool >>= fun permit ->
  list_size (int_bound 2) match_gen >>= fun matches ->
  list_size (int_bound 1) set_gen >>= fun sets ->
  return
    (Route_map.entry
       ~action:(if permit then Action.Permit else Action.Deny)
       ~matches ~sets seq)

let map_gen =
  let open QCheck2.Gen in
  int_range 1 4 >>= fun n ->
  let rec build i acc =
    if i > n then return (Route_map.make "m" (List.rev acc))
    else entry_gen (i * 10) >>= fun e -> build (i + 1) (e :: acc)
  in
  build 1 []

let route_gen =
  let open QCheck2.Gen in
  oneofl
    [
      "1.2.3.0/24"; "1.2.3.0/25"; "1.2.3.4/32"; "1.2.0.0/16"; "10.0.0.0/8";
      "10.1.0.0/16"; "10.1.2.0/24"; "10.2.0.0/16"; "9.9.9.0/24";
    ]
  >>= fun p ->
  oneofl
    [ []; [ comm "100:1" ]; [ comm "101:1" ]; [ comm "100:1"; comm "101:1" ]; comms_pool ]
  >>= fun cs ->
  oneofl [ Route.Bgp; Route.Ospf; Route.Connected ] >>= fun source ->
  oneofl [ 0; 5; 10 ] >>= fun med ->
  return (Route.make ~communities:(Community.Set.of_list cs) ~med ~source (pfx p))

let prop_guard_agrees_with_eval =
  QCheck2.Test.make ~name:"entry guard pred agrees with concrete matching" ~count:600
    QCheck2.Gen.(pair (entry_gen 10) route_gen) (fun (e, r) ->
      let guard = Guard.compile_entry_guard env e in
      Pred.satisfies ~env r guard = Eval.entry_matches env e r)

let prop_transfer_partition =
  QCheck2.Test.make ~name:"transfer regions partition the space" ~count:300
    QCheck2.Gen.(pair map_gen route_gen) (fun (m, r) ->
      let regions = Transfer.compile env m in
      let hits =
        List.filter (fun (rg : Transfer.region) -> Pred.satisfies ~env r rg.space) regions
      in
      List.length hits = 1)

let prop_transfer_action_agrees =
  QCheck2.Test.make ~name:"transfer action agrees with eval" ~count:600
    QCheck2.Gen.(pair map_gen route_gen) (fun (m, r) ->
      let regions = Transfer.compile env m in
      match
        List.find_opt (fun (rg : Transfer.region) -> Pred.satisfies ~env r rg.space) regions
      with
      | None -> false
      | Some rg -> rg.action = Eval.verdict_action (Eval.eval env m r))

let prop_diff_empty_iff_same_map =
  QCheck2.Test.make ~name:"policy diff of a map with itself is empty" ~count:100 map_gen
    (fun m -> Policy_diff.compare_maps ~env_a:env ~env_b:env m m = [])

let prop_diff_witnesses_disagree =
  QCheck2.Test.make ~name:"policy diff examples actually disagree" ~count:150
    QCheck2.Gen.(pair map_gen map_gen) (fun (m1, m2) ->
      let diffs = Policy_diff.compare_maps ~env_a:env ~env_b:env m1 m2 in
      List.for_all
        (fun (d : Policy_diff.difference) ->
          match d.example with
          | None -> true
          | Some r -> (
              let v1 = Eval.eval env m1 r and v2 = Eval.eval env m2 r in
              match (v1, v2) with
              | Eval.Denied, Eval.Denied -> false
              | Eval.Permitted a, Eval.Permitted b -> not (Route.equal a b)
              | _ -> true))
        diffs)

let prop_diff_detects_action_flip =
  QCheck2.Test.make ~name:"flipping an action is always detected" ~count:150 map_gen
    (fun m ->
      match m.Route_map.entries with
      | [] -> true
      | e :: rest ->
          let flipped =
            Route_map.make m.Route_map.name
              ({ e with Route_map.action = Action.flip e.Route_map.action } :: rest)
          in
          let guard = Guard.compile_entry_guard env e in
          (* Only meaningful when the first entry matches something. *)
          Pred.is_empty guard
          || Policy_diff.compare_maps ~env_a:env ~env_b:env m flipped <> [])

(* ------------------------------------------------------------------ *)
(* Policy_diff targeted cases                                          *)
(* ------------------------------------------------------------------ *)

let test_diff_med_difference () =
  let m1 =
    Route_map.make "to_provider" [ Route_map.entry ~sets:[ Route_map.Set_med 50 ] 10 ]
  in
  let m2 =
    Route_map.make "to_provider" [ Route_map.entry ~sets:[ Route_map.Set_med 60 ] 10 ]
  in
  match Policy_diff.compare_maps ~env_a:env ~env_b:env m1 m2 with
  | [ d ] -> (
      match d.Policy_diff.kind with
      | Policy_diff.Effect_mismatch [ ("MED", "50", "60") ] -> ()
      | _ -> Alcotest.fail "expected MED effect mismatch")
  | ds -> Alcotest.failf "expected one difference, got %d" (List.length ds)

let test_diff_and_or_counterexample () =
  (* The paper's AND/OR bug: deny needs any community, GPT-4 wrote all. *)
  let and_map =
    Route_map.make "FILTER"
      [
        Route_map.entry ~action:Action.Deny
          ~matches:
            [ Route_map.Match_community_list "c0"; Route_map.Match_community_list "c1" ]
          10;
        Route_map.entry 20;
      ]
  in
  let or_map =
    Route_map.make "FILTER"
      [
        Route_map.entry ~action:Action.Deny
          ~matches:[ Route_map.Match_community_list "c0" ] 10;
        Route_map.entry ~action:Action.Deny
          ~matches:[ Route_map.Match_community_list "c1" ] 20;
        Route_map.entry 30;
      ]
  in
  let diffs = Policy_diff.compare_maps ~env_a:env ~env_b:env and_map or_map in
  check bool_t "difference found" true (diffs <> []);
  (* Some witness should carry exactly one of the two communities. *)
  check bool_t "witness with single community" true
    (List.exists
       (fun (d : Policy_diff.difference) ->
         match d.example with
         | Some r ->
             let has c = Route.has_community r (comm c) in
             (has "100:1" && not (has "101:1")) || (has "101:1" && not (has "100:1"))
         | None -> false)
       diffs)

let test_diff_equivalent_maps () =
  (* Same semantics, different sequence numbers: no differences. *)
  let m1 =
    Route_map.make "m"
      [ Route_map.entry ~matches:[ Route_map.Match_prefix_list "p24" ] 10 ]
  in
  let m2 =
    Route_map.make "m"
      [ Route_map.entry ~matches:[ Route_map.Match_prefix_list "p24" ] 999 ]
  in
  check bool_t "equivalent" true (Policy_diff.equivalent ~env_a:env ~env_b:env m1 m2)

let test_diff_redistribution_leak () =
  (* Juniper export policy lacking "from bgp" leaks OSPF routes. *)
  let with_from_bgp =
    Route_map.make "export"
      [
        Route_map.entry ~matches:[ Route_map.Match_source_protocol Route.Bgp ] 10;
      ]
  in
  let without =
    Route_map.make "export" [ Route_map.entry 10 ]
  in
  let diffs = Policy_diff.compare_maps ~env_a:env ~env_b:env with_from_bgp without in
  check bool_t "leak detected" true
    (List.exists
       (fun (d : Policy_diff.difference) ->
         match d.example with
         | Some r -> r.Route.source <> Route.Bgp
         | None -> false)
       diffs)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_space_union;
      prop_space_inter;
      prop_space_diff;
      prop_space_sample_sound;
      prop_space_diff_then_union_restores;
      prop_guard_agrees_with_eval;
      prop_transfer_partition;
      prop_transfer_action_agrees;
      prop_diff_empty_iff_same_map;
      prop_diff_witnesses_disagree;
      prop_diff_detects_action_flip;
    ]

let () =
  Alcotest.run "symbolic"
    [
      ( "len-set",
        [
          Alcotest.test_case "basics" `Quick test_len_set_basics;
          Alcotest.test_case "algebra" `Quick test_len_set_algebra;
        ] );
      ( "prefix-space",
        [
          Alcotest.test_case "exact membership" `Quick test_space_exact_membership;
          Alcotest.test_case "orlonger" `Quick test_space_orlonger;
          Alcotest.test_case "diff peels subtrees" `Quick test_space_diff_peels;
          Alcotest.test_case "diff on lengths" `Quick test_space_diff_lengths_only;
          Alcotest.test_case "sampling" `Quick test_space_sample;
          Alcotest.test_case "full minus full" `Quick test_space_full_minus_full_empty;
        ] );
      ( "attribute-constraints",
        [
          Alcotest.test_case "int constraints" `Quick test_int_constr;
          Alcotest.test_case "community cubes" `Quick test_comm_constr;
        ] );
      ( "guards",
        [
          Alcotest.test_case "prefix list carve-out" `Quick
            test_guard_prefix_list_deny_carveout;
          Alcotest.test_case "community list compilation" `Quick
            test_guard_community_list_compilation;
        ] );
      ( "policy-diff",
        [
          Alcotest.test_case "med difference" `Quick test_diff_med_difference;
          Alcotest.test_case "AND/OR counterexample" `Quick test_diff_and_or_counterexample;
          Alcotest.test_case "equivalent maps" `Quick test_diff_equivalent_maps;
          Alcotest.test_case "redistribution leak" `Quick test_diff_redistribution_leak;
        ] );
      ("properties", props);
    ]
