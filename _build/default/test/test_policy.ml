(* Unit and property tests for the vendor-neutral policy IR and its
   concrete evaluator. *)

open Netcore
open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let pfx = Prefix.of_string_exn
let comm = Community.of_string_exn
let ip = Ipv4.of_string_exn

(* ------------------------------------------------------------------ *)
(* Prefix lists                                                        *)
(* ------------------------------------------------------------------ *)

let test_prefix_list_first_match () =
  let l =
    Prefix_list.make "l"
      [
        Prefix_list.entry ~action:Action.Deny 5
          (Prefix_range.exact (pfx "1.2.3.0/24"));
        Prefix_list.entry 10 (Prefix_range.orlonger (pfx "1.2.0.0/16"));
      ]
  in
  check bool_t "denied by first entry" false (Prefix_list.matches l (pfx "1.2.3.0/24"));
  check bool_t "permitted by second" true (Prefix_list.matches l (pfx "1.2.4.0/24"));
  check bool_t "longer under deny still hits second" true
    (Prefix_list.matches l (pfx "1.2.3.0/25"));
  check bool_t "implicit deny" false (Prefix_list.matches l (pfx "9.9.9.0/24"))

let test_prefix_list_sorts_by_seq () =
  let l =
    Prefix_list.make "l"
      [
        Prefix_list.entry 20 (Prefix_range.orlonger (pfx "0.0.0.0/0"));
        Prefix_list.entry ~action:Action.Deny 10 (Prefix_range.exact (pfx "5.0.0.0/8"));
      ]
  in
  check bool_t "entry 10 applies first" false (Prefix_list.matches l (pfx "5.0.0.0/8"))

let test_prefix_list_duplicate_seq () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Prefix_list.make: duplicate seq 5 in l") (fun () ->
      ignore
        (Prefix_list.make "l"
           [
             Prefix_list.entry 5 (Prefix_range.exact (pfx "1.0.0.0/8"));
             Prefix_list.entry 5 (Prefix_range.exact (pfx "2.0.0.0/8"));
           ]))

(* ------------------------------------------------------------------ *)
(* Community lists                                                     *)
(* ------------------------------------------------------------------ *)

let test_community_list_all_of_entry () =
  (* One entry listing two communities requires BOTH (AND within entry). *)
  let l = Community_list.make "cl" [ Community_list.entry [ comm "100:1"; comm "101:1" ] ] in
  check bool_t "both present" true
    (Community_list.matches l (Community.Set.of_list [ comm "100:1"; comm "101:1" ]));
  check bool_t "one missing" false
    (Community_list.matches l (Community.Set.singleton (comm "100:1")))

let test_community_list_any_of_entries () =
  (* Two single-community entries: either suffices (OR across entries). *)
  let l =
    Community_list.make "cl"
      [ Community_list.entry [ comm "100:1" ]; Community_list.entry [ comm "101:1" ] ]
  in
  check bool_t "first" true (Community_list.matches l (Community.Set.singleton (comm "100:1")));
  check bool_t "second" true (Community_list.matches l (Community.Set.singleton (comm "101:1")));
  check bool_t "neither" false (Community_list.matches l (Community.Set.singleton (comm "9:9")))

let test_community_list_deny_entry () =
  let l =
    Community_list.make "cl"
      [
        Community_list.entry ~action:Action.Deny [ comm "100:1" ];
        Community_list.entry [ comm "100:1"; comm "101:1" ];
      ]
  in
  (* The deny entry matches any set containing 100:1 and fires first. *)
  check bool_t "deny shadows" false
    (Community_list.matches l (Community.Set.of_list [ comm "100:1"; comm "101:1" ]))

(* ------------------------------------------------------------------ *)
(* As-path lists                                                       *)
(* ------------------------------------------------------------------ *)

let test_as_path_list () =
  let l =
    As_path_list.make "no-transit"
      [
        As_path_list.entry ~action:Action.Deny "_100_";
        As_path_list.entry ".*";
      ]
  in
  check bool_t "deny through 100" false
    (As_path_list.matches l (As_path.of_list [ 200; 100; 300 ]));
  check bool_t "permit others" true (As_path_list.matches l (As_path.of_list [ 200; 300 ]))

(* ------------------------------------------------------------------ *)
(* Route-map evaluation                                                *)
(* ------------------------------------------------------------------ *)

let env =
  {
    Eval.prefix_lists =
      [
        Prefix_list.make "our-networks"
          [ Prefix_list.entry 5 (Prefix_range.ge (pfx "1.2.3.0/24") 24) ];
      ];
    community_lists =
      [
        Community_list.make "cl1" [ Community_list.entry [ comm "100:1" ] ];
        Community_list.make "cl2" [ Community_list.entry [ comm "101:1" ] ];
      ];
    as_path_lists = [ As_path_list.make "al" [ As_path_list.entry "^65000_" ] ];
  }

let route ?(comms = []) ?(med = 0) ?(source = Route.Bgp) ?(path = []) p =
  Route.make
    ~communities:(Community.Set.of_list (List.map comm comms))
    ~med ~source ~as_path:(As_path.of_list path) (pfx p)

let test_eval_first_match_permit () =
  let m =
    Route_map.make "m"
      [
        Route_map.entry ~matches:[ Route_map.Match_prefix_list "our-networks" ]
          ~sets:[ Route_map.Set_med 50 ] 10;
        Route_map.entry 20;
      ]
  in
  (match Eval.eval env m (route "1.2.3.0/25") with
  | Eval.Permitted r -> check int_t "med set" 50 r.Route.med
  | Eval.Denied -> Alcotest.fail "expected permit");
  match Eval.eval env m (route "9.9.9.0/24") with
  | Eval.Permitted r -> check int_t "med unchanged" 0 r.Route.med
  | Eval.Denied -> Alcotest.fail "expected permit via catch-all"

let test_eval_implicit_deny () =
  let m =
    Route_map.make "m"
      [ Route_map.entry ~matches:[ Route_map.Match_prefix_list "our-networks" ] 10 ]
  in
  check bool_t "implicit deny" true (Eval.eval env m (route "9.9.9.0/24") = Eval.Denied)

let test_eval_and_within_entry () =
  (* The paper's AND/OR confusion: both communities required in one entry. *)
  let and_map =
    Route_map.make "and"
      [
        Route_map.entry ~action:Action.Deny
          ~matches:
            [ Route_map.Match_community_list "cl1"; Route_map.Match_community_list "cl2" ]
          10;
        Route_map.entry 20;
      ]
  in
  check bool_t "both -> denied" true
    (Eval.eval env and_map (route ~comms:[ "100:1"; "101:1" ] "5.0.0.0/24") = Eval.Denied);
  check bool_t "only one -> permitted" true
    (match Eval.eval env and_map (route ~comms:[ "100:1" ] "5.0.0.0/24") with
    | Eval.Permitted _ -> true
    | Eval.Denied -> false)

let test_eval_or_across_entries () =
  let or_map =
    Route_map.make "or"
      [
        Route_map.entry ~action:Action.Deny
          ~matches:[ Route_map.Match_community_list "cl1" ] 10;
        Route_map.entry ~action:Action.Deny
          ~matches:[ Route_map.Match_community_list "cl2" ] 20;
        Route_map.entry 30;
      ]
  in
  check bool_t "first alone denied" true
    (Eval.eval env or_map (route ~comms:[ "100:1" ] "5.0.0.0/24") = Eval.Denied);
  check bool_t "second alone denied" true
    (Eval.eval env or_map (route ~comms:[ "101:1" ] "5.0.0.0/24") = Eval.Denied);
  check bool_t "clean permitted" true
    (match Eval.eval env or_map (route "5.0.0.0/24") with
    | Eval.Permitted _ -> true
    | Eval.Denied -> false)

let test_eval_set_community_replace_vs_additive () =
  let base = route ~comms:[ "7:7" ] "5.0.0.0/24" in
  let replace =
    Route_map.make "r"
      [
        Route_map.entry
          ~sets:[ Route_map.Set_community { communities = [ comm "100:1" ]; additive = false } ]
          10;
      ]
  in
  let additive =
    Route_map.make "a"
      [
        Route_map.entry
          ~sets:[ Route_map.Set_community { communities = [ comm "100:1" ]; additive = true } ]
          10;
      ]
  in
  (match Eval.eval env replace base with
  | Eval.Permitted r ->
      check string_t "replaced" "100:1" (Community.Set.to_string r.Route.communities)
  | Eval.Denied -> Alcotest.fail "expected permit");
  match Eval.eval env additive base with
  | Eval.Permitted r ->
      check string_t "added" "7:7 100:1" (Community.Set.to_string r.Route.communities)
  | Eval.Denied -> Alcotest.fail "expected permit"

let test_eval_source_protocol () =
  let m =
    Route_map.make "m"
      [
        Route_map.entry ~matches:[ Route_map.Match_source_protocol Route.Bgp ] 10;
      ]
  in
  check bool_t "bgp passes" true
    (match Eval.eval env m (route ~source:Route.Bgp "5.0.0.0/24") with
    | Eval.Permitted _ -> true
    | _ -> false);
  check bool_t "ospf denied" true
    (Eval.eval env m (route ~source:Route.Ospf "5.0.0.0/24") = Eval.Denied)

let test_eval_med_match_and_set () =
  let m =
    Route_map.make "m"
      [
        Route_map.entry ~matches:[ Route_map.Match_med 5 ]
          ~sets:[ Route_map.Set_local_pref 200 ] 10;
      ]
  in
  (match Eval.eval env m (route ~med:5 "5.0.0.0/24") with
  | Eval.Permitted r -> check int_t "lp" 200 r.Route.local_pref
  | Eval.Denied -> Alcotest.fail "expected permit");
  check bool_t "other med denied" true (Eval.eval env m (route ~med:6 "5.0.0.0/24") = Eval.Denied)

let test_eval_as_path_match () =
  let m =
    Route_map.make "m" [ Route_map.entry ~matches:[ Route_map.Match_as_path "al" ] 10 ]
  in
  check bool_t "matching path" true
    (match Eval.eval env m (route ~path:[ 65000; 100 ] "5.0.0.0/24") with
    | Eval.Permitted _ -> true
    | _ -> false);
  check bool_t "non-matching path" true
    (Eval.eval env m (route ~path:[ 100; 65000 ] "5.0.0.0/24") = Eval.Denied)

let test_eval_undefined_list_matches_nothing () =
  let m =
    Route_map.make "m"
      [ Route_map.entry ~matches:[ Route_map.Match_prefix_list "nope" ] 10 ]
  in
  check bool_t "undefined -> deny" true (Eval.eval env m (route "5.0.0.0/24") = Eval.Denied)

let test_eval_comm_delete () =
  let env =
    { env with
      Eval.community_lists =
        Community_list.make "del" [ Community_list.entry [ comm "100:1" ] ]
        :: env.Eval.community_lists }
  in
  let m =
    Route_map.make "m"
      [ Route_map.entry ~sets:[ Route_map.Set_community_delete "del" ] 10 ]
  in
  match Eval.eval env m (route ~comms:[ "100:1"; "7:7" ] "5.0.0.0/24") with
  | Eval.Permitted r ->
      check string_t "kept others" "7:7" (Community.Set.to_string r.Route.communities)
  | Eval.Denied -> Alcotest.fail "expected permit"

let test_eval_prepend () =
  let m =
    Route_map.make "m"
      [ Route_map.entry ~sets:[ Route_map.Set_as_path_prepend [ 1; 1 ] ] 10 ]
  in
  match Eval.eval env m (route ~path:[ 9 ] "5.0.0.0/24") with
  | Eval.Permitted r -> check string_t "prepended" "1 1 9" (As_path.to_string r.Route.as_path)
  | Eval.Denied -> Alcotest.fail "expected permit"

let test_eval_optional_none_permits () =
  check bool_t "no policy permits unchanged" true
    (match Eval.eval_optional env None (route "5.0.0.0/24") with
    | Eval.Permitted r -> Route.equal r (route "5.0.0.0/24")
    | Eval.Denied -> false)

(* ------------------------------------------------------------------ *)
(* Config IR                                                           *)
(* ------------------------------------------------------------------ *)

let test_config_ir_references () =
  let c = Config_ir.empty "r" in
  let c =
    {
      c with
      Config_ir.route_maps =
        [
          Route_map.make "m"
            [ Route_map.entry ~matches:[ Route_map.Match_prefix_list "missing-pl" ] 10 ];
        ];
      bgp =
        Some
          {
            Config_ir.asn = 1;
            router_id = None;
            networks = [];
            neighbors =
              [ Config_ir.neighbor (ip "1.0.0.2") ~remote_as:2 ~import_policy:"missing-rm" ];
            redistributions = [];
          };
    }
  in
  let missing = Config_ir.undefined_references c in
  check bool_t "missing prefix list" true (List.mem "prefix-list missing-pl" missing);
  check bool_t "missing route map" true (List.mem "route-map missing-rm" missing)

let test_config_ir_connected () =
  let c =
    {
      (Config_ir.empty "r") with
      Config_ir.interfaces =
        [
          Config_ir.interface ~address:(ip "10.0.0.1", 24) (Iface.ethernet ~slot:0 ~port:0);
          Config_ir.interface ~address:(ip "9.0.0.1", 24) ~shutdown:true
            (Iface.ethernet ~slot:0 ~port:1);
          Config_ir.interface (Iface.loopback 0);
        ];
    }
  in
  let nets = Config_ir.connected_prefixes c in
  check int_t "only live addressed ifaces" 1 (List.length nets);
  check bool_t "subnet" true (Prefix.equal (List.hd nets) (pfx "10.0.0.0/24"))

let test_config_ir_with_route_map () =
  let c = Config_ir.empty "r" in
  let c = Config_ir.with_route_map c (Route_map.permit_all "m") in
  let c = Config_ir.with_route_map c (Route_map.deny_all "m") in
  check int_t "replaced, not duplicated" 1 (List.length c.Config_ir.route_maps);
  match Config_ir.find_route_map c "m" with
  | Some m ->
      check bool_t "is the deny version" true
        ((List.hd m.Route_map.entries).Route_map.action = Action.Deny)
  | None -> Alcotest.fail "map not found"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prefix_gen =
  QCheck2.Gen.map2
    (fun a l -> Prefix.make (Ipv4.of_int a) l)
    (QCheck2.Gen.int_range 0 0xFFFFFFFF)
    (QCheck2.Gen.int_range 0 32)

let range_gen =
  let open QCheck2.Gen in
  prefix_gen >>= fun base ->
  int_range (Prefix.len base) 32 >>= fun ge ->
  int_range ge 32 >>= fun le -> return (Prefix_range.make base ~ge ~le)

let prop_range_matches_definition =
  QCheck2.Test.make ~name:"prefix-range matches = subsume + len bounds" ~count:500
    (QCheck2.Gen.pair range_gen prefix_gen) (fun (r, q) ->
      Prefix_range.matches r q
      = (Prefix.subsumes (Prefix_range.base r) q
        && Prefix_range.ge_bound r <= Prefix.len q
        && Prefix.len q <= Prefix_range.le_bound r))

let prop_prefix_list_monotone_deny =
  (* Adding a leading deny entry can only shrink the permitted set. *)
  QCheck2.Test.make ~name:"leading deny entry shrinks prefix list" ~count:200
    (QCheck2.Gen.triple range_gen range_gen prefix_gen) (fun (r1, r2, q) ->
      let base = Prefix_list.make "l" [ Prefix_list.entry 10 r1 ] in
      let guarded =
        Prefix_list.make "l"
          [ Prefix_list.entry ~action:Action.Deny 5 r2; Prefix_list.entry 10 r1 ]
      in
      (not (Prefix_list.matches guarded q)) || Prefix_list.matches base q)

let prop_additive_superset =
  (* additive set community yields a superset of the original set. *)
  let comm_gen =
    QCheck2.Gen.map2 Community.make (QCheck2.Gen.int_bound 500) (QCheck2.Gen.int_bound 500)
  in
  QCheck2.Test.make ~name:"additive community set is a superset" ~count:300
    (QCheck2.Gen.triple (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 4) comm_gen)
       comm_gen prefix_gen) (fun (cs, c, p) ->
      let r = Route.make ~communities:(Community.Set.of_list cs) p in
      let m =
        Route_map.make "m"
          [
            Route_map.entry
              ~sets:[ Route_map.Set_community { communities = [ c ]; additive = true } ]
              10;
          ]
      in
      match Eval.eval Eval.empty_env m r with
      | Eval.Permitted r' ->
          Community.Set.subset r.Route.communities r'.Route.communities
          && Community.Set.mem c r'.Route.communities
      | Eval.Denied -> false)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_range_matches_definition; prop_prefix_list_monotone_deny; prop_additive_superset ]

let () =
  Alcotest.run "policy"
    [
      ( "prefix-list",
        [
          Alcotest.test_case "first match" `Quick test_prefix_list_first_match;
          Alcotest.test_case "sorted by seq" `Quick test_prefix_list_sorts_by_seq;
          Alcotest.test_case "duplicate seq rejected" `Quick test_prefix_list_duplicate_seq;
        ] );
      ( "community-list",
        [
          Alcotest.test_case "AND within entry" `Quick test_community_list_all_of_entry;
          Alcotest.test_case "OR across entries" `Quick test_community_list_any_of_entries;
          Alcotest.test_case "deny entry shadows" `Quick test_community_list_deny_entry;
        ] );
      ("as-path-list", [ Alcotest.test_case "deny then permit" `Quick test_as_path_list ]);
      ( "eval",
        [
          Alcotest.test_case "first match permit" `Quick test_eval_first_match_permit;
          Alcotest.test_case "implicit deny" `Quick test_eval_implicit_deny;
          Alcotest.test_case "AND within entry" `Quick test_eval_and_within_entry;
          Alcotest.test_case "OR across entries" `Quick test_eval_or_across_entries;
          Alcotest.test_case "replace vs additive" `Quick
            test_eval_set_community_replace_vs_additive;
          Alcotest.test_case "source protocol" `Quick test_eval_source_protocol;
          Alcotest.test_case "med match and set" `Quick test_eval_med_match_and_set;
          Alcotest.test_case "as-path match" `Quick test_eval_as_path_match;
          Alcotest.test_case "undefined list" `Quick test_eval_undefined_list_matches_nothing;
          Alcotest.test_case "community delete" `Quick test_eval_comm_delete;
          Alcotest.test_case "as-path prepend" `Quick test_eval_prepend;
          Alcotest.test_case "no policy permits" `Quick test_eval_optional_none_permits;
        ] );
      ( "config-ir",
        [
          Alcotest.test_case "undefined references" `Quick test_config_ir_references;
          Alcotest.test_case "connected prefixes" `Quick test_config_ir_connected;
          Alcotest.test_case "with_route_map replaces" `Quick test_config_ir_with_route_map;
        ] );
      ("properties", props);
    ]
