(* Tests for the data-plane substrate: packets, ACLs, the symbolic ACL
   differ, dialect support, and the ACL path through Campion and the
   translation VPP loop. *)

open Netcore
open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let pfx = Prefix.of_string_exn
let ip = Ipv4.of_string_exn

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Port sets                                                           *)
(* ------------------------------------------------------------------ *)

let test_port_set_basics () =
  let s = Symbolic.Port_set.range 80 443 in
  check bool_t "mem 80" true (Symbolic.Port_set.mem 80 s);
  check bool_t "mem 443" true (Symbolic.Port_set.mem 443 s);
  check bool_t "not 79" false (Symbolic.Port_set.mem 79 s);
  check bool_t "choose" true (Symbolic.Port_set.choose s = Some 80);
  check bool_t "empty range" true (Symbolic.Port_set.is_empty (Symbolic.Port_set.range 5 4))

let test_port_set_algebra () =
  let open Symbolic.Port_set in
  let a = range 10 20 and b = range 15 30 in
  check bool_t "inter" true (equal (inter a b) (range 15 20));
  check bool_t "union merges" true (equal (union a b) (range 10 30));
  check bool_t "diff" true (equal (diff a b) (range 10 14));
  check bool_t "complement round trip" true (equal (complement (complement a)) a);
  (* union of adjacent intervals merges *)
  check bool_t "adjacent merge" true (equal (union (range 1 5) (range 6 9)) (range 1 9))

let prop_port_set_membership =
  let open QCheck2.Gen in
  let set_gen =
    list_size (int_bound 3)
      (int_bound 100 >>= fun lo -> int_range lo 110 >>= fun hi -> return (lo, hi))
    >>= fun ranges ->
    return
      (List.fold_left
         (fun acc (lo, hi) -> Symbolic.Port_set.union acc (Symbolic.Port_set.range lo hi))
         Symbolic.Port_set.empty ranges)
  in
  QCheck2.Test.make ~name:"port set algebra agrees with membership" ~count:300
    (triple set_gen set_gen (int_bound 120)) (fun (a, b, p) ->
      let open Symbolic.Port_set in
      mem p (inter a b) = (mem p a && mem p b)
      && mem p (union a b) = (mem p a || mem p b)
      && mem p (diff a b) = (mem p a && not (mem p b))
      && mem p (complement a) = not (mem p a))

(* ------------------------------------------------------------------ *)
(* Concrete ACLs                                                       *)
(* ------------------------------------------------------------------ *)

let ssh_guard =
  Acl.make "mgmt-in"
    [
      Acl.entry ~proto:(Acl.Proto Packet.Tcp) ~src:(pfx "1.2.3.0/24")
        ~dst:(Prefix.host (ip "1.1.1.1")) ~dst_port:(Acl.Eq 22) 10;
      Acl.entry ~action:Action.Deny ~dst:(Prefix.host (ip "1.1.1.1")) 20;
      Acl.entry 30;
    ]

let pkt ?(proto = Packet.Tcp) ?(port = 0) src dst =
  Packet.make ~proto ~dst_port:port ~src:(ip src) ~dst:(ip dst) ()

let test_acl_first_match () =
  check bool_t "ssh from customer" true
    (Acl.permits ssh_guard (pkt ~port:22 "1.2.3.9" "1.1.1.1"));
  check bool_t "telnet to loopback denied" false
    (Acl.permits ssh_guard (pkt ~port:23 "1.2.3.9" "1.1.1.1"));
  check bool_t "ssh from elsewhere denied" false
    (Acl.permits ssh_guard (pkt ~port:22 "9.9.9.9" "1.1.1.1"));
  check bool_t "transit traffic permitted" true
    (Acl.permits ssh_guard (pkt ~port:80 "9.9.9.9" "8.8.8.8"));
  check bool_t "udp 22 to loopback denied" false
    (Acl.permits ssh_guard (pkt ~proto:Packet.Udp ~port:22 "1.2.3.9" "1.1.1.1"))

let test_acl_implicit_deny () =
  let empty = Acl.make "none" [] in
  check bool_t "implicit deny" false (Acl.permits empty (pkt "1.1.1.1" "2.2.2.2"))

(* ------------------------------------------------------------------ *)
(* Symbolic ACL diff                                                   *)
(* ------------------------------------------------------------------ *)

let test_acl_diff_equivalent () =
  check bool_t "self equivalence" true (Symbolic.Acl_diff.equivalent ssh_guard ssh_guard);
  (* Different sequence numbers, same semantics. *)
  let renumbered =
    Acl.make "mgmt-in"
      (List.map
         (fun (e : Acl.entry) -> { e with Acl.seq = e.Acl.seq * 7 })
         ssh_guard.Acl.entries)
  in
  check bool_t "renumbered equivalent" true (Symbolic.Acl_diff.equivalent ssh_guard renumbered)

let test_acl_diff_flipped_action () =
  let flipped =
    Acl.make "mgmt-in"
      (List.map
         (fun (e : Acl.entry) ->
           if e.Acl.seq = 10 then { e with Acl.action = Action.Deny } else e)
         ssh_guard.Acl.entries)
  in
  let diffs = Symbolic.Acl_diff.compare_acls ssh_guard flipped in
  check bool_t "found" true (diffs <> []);
  (* Every witness packet must genuinely disagree concretely. *)
  List.iter
    (fun (d : Symbolic.Acl_diff.difference) ->
      check bool_t "witness disagrees" true
        (Acl.permits ssh_guard d.Symbolic.Acl_diff.example
        <> Acl.permits flipped d.Symbolic.Acl_diff.example))
    diffs;
  (* The ssh packet is the thing that changed. *)
  check bool_t "some witness is the ssh packet shape" true
    (List.exists
       (fun (d : Symbolic.Acl_diff.difference) ->
         let p = d.Symbolic.Acl_diff.example in
         p.Packet.dst_port = 22 && p.Packet.proto = Packet.Tcp)
       diffs)

let test_acl_diff_dropped_entry () =
  let without_deny =
    Acl.make "mgmt-in"
      (List.filter (fun (e : Acl.entry) -> e.Acl.seq <> 20) ssh_guard.Acl.entries)
  in
  let diffs = Symbolic.Acl_diff.compare_acls ssh_guard without_deny in
  (* Without the deny, non-ssh packets to the loopback are now permitted. *)
  check bool_t "leak to loopback" true
    (List.exists
       (fun (d : Symbolic.Acl_diff.difference) ->
         Ipv4.equal d.Symbolic.Acl_diff.example.Packet.dst (ip "1.1.1.1")
         && d.Symbolic.Acl_diff.action_a = Action.Deny
         && d.Symbolic.Acl_diff.action_b = Action.Permit)
       diffs)

(* Agreement property: symbolic regions classify packets exactly like the
   concrete evaluator, for random ACLs and packets. *)
let acl_gen =
  let open QCheck2.Gen in
  let prefix_gen =
    oneofl [ "0.0.0.0/0"; "1.2.3.0/24"; "1.2.3.128/25"; "10.0.0.0/8"; "1.1.1.1/32" ]
    >>= fun s -> return (pfx s)
  in
  let entry_gen seq =
    bool >>= fun permit ->
    oneofl [ Acl.Any_proto; Acl.Proto Packet.Tcp; Acl.Proto Packet.Udp ] >>= fun proto ->
    prefix_gen >>= fun src ->
    prefix_gen >>= fun dst ->
    oneofl [ Acl.Any_port; Acl.Eq 22; Acl.Eq 80; Acl.Port_range (1000, 2000) ]
    >>= fun dst_port ->
    return
      (Acl.entry
         ~action:(if permit then Action.Permit else Action.Deny)
         ~proto ~src ~dst ~dst_port seq)
  in
  int_range 1 4 >>= fun n ->
  let rec build i acc =
    if i > n then return (Acl.make "gen" (List.rev acc))
    else entry_gen (i * 10) >>= fun e -> build (i + 1) (e :: acc)
  in
  build 1 []

let packet_gen =
  let open QCheck2.Gen in
  oneofl [ "1.2.3.4"; "1.2.3.200"; "10.5.5.5"; "1.1.1.1"; "9.9.9.9" ] >>= fun src ->
  oneofl [ "1.2.3.4"; "1.1.1.1"; "10.0.0.1"; "8.8.8.8" ] >>= fun dst ->
  oneofl [ Packet.Tcp; Packet.Udp; Packet.Icmp ] >>= fun proto ->
  oneofl [ 0; 22; 80; 1500; 4000 ] >>= fun port ->
  return (pkt ~proto ~port src dst)

let prop_acl_symbolic_agrees =
  QCheck2.Test.make ~name:"symbolic ACL regions agree with concrete permits" ~count:500
    (QCheck2.Gen.pair acl_gen packet_gen) (fun (acl, p) ->
      let regions = Symbolic.Acl_diff.compile acl in
      let hits =
        List.filter
          (fun (r : Symbolic.Acl_diff.region) ->
            List.exists (Symbolic.Acl_diff.cube_satisfies p) r.Symbolic.Acl_diff.space)
          regions
      in
      match hits with
      | [ r ] -> (r.Symbolic.Acl_diff.action = Action.Permit) = Acl.permits acl p
      | _ -> false)

let prop_acl_diff_witnesses =
  QCheck2.Test.make ~name:"ACL diff witnesses concretely disagree" ~count:200
    (QCheck2.Gen.pair acl_gen acl_gen) (fun (a, b) ->
      List.for_all
        (fun (d : Symbolic.Acl_diff.difference) ->
          Acl.permits a d.Symbolic.Acl_diff.example
          <> Acl.permits b d.Symbolic.Acl_diff.example)
        (Symbolic.Acl_diff.compare_acls a b))

(* ------------------------------------------------------------------ *)
(* Dialects                                                            *)
(* ------------------------------------------------------------------ *)

let border_ir = fst (Cisco.Parser.parse Cisco.Samples.border_router)

let test_cisco_acl_parses () =
  check int_t "one acl" 1 (List.length border_ir.Config_ir.acls);
  let a = Option.get (Config_ir.find_acl border_ir "mgmt-in") in
  check int_t "three entries" 3 (List.length a.Acl.entries);
  let eth0 = Option.get (Config_ir.find_interface border_ir (Iface.ethernet ~slot:0 ~port:0)) in
  check bool_t "attached in" true (eth0.Config_ir.acl_in = Some "mgmt-in")

let test_cisco_acl_round_trip () =
  let printed = Cisco.Printer.print border_ir in
  let reparsed, diags = Cisco.Parser.parse printed in
  check int_t "no diags" 0 (List.length diags);
  check bool_t "round trip" true (Config_ir.equal border_ir reparsed)

let test_junos_firewall_round_trip () =
  let junos_ir = Juniper.Translate.of_cisco_ir border_ir in
  let text = Juniper.Printer.print junos_ir in
  check bool_t "has firewall section" true (contains ~sub:"firewall" text);
  check bool_t "has filter attach" true (contains ~sub:"input mgmt-in" text);
  let reparsed, diags = Juniper.Parser.parse text in
  check int_t "no diags" 0 (List.length diags);
  let a = Option.get (Config_ir.find_acl reparsed "mgmt-in") in
  check bool_t "semantically equal acl" true
    (Symbolic.Acl_diff.equivalent a (Option.get (Config_ir.find_acl border_ir "mgmt-in")))

(* ------------------------------------------------------------------ *)
(* Campion and the loop                                                *)
(* ------------------------------------------------------------------ *)

let correct_junos = Juniper.Translate.of_cisco_ir border_ir

let test_campion_acl_difference () =
  let text =
    Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_junos
      [
        Llmsim.Fault.make Llmsim.Error_class.Acl_action_flipped
          (Llmsim.Fault.Policy_entry ("mgmt-in", 10));
      ]
  in
  let translation, _ = Juniper.Parser.parse text in
  let findings = Campion.Differ.compare ~original:border_ir ~translation in
  check bool_t "acl behavior finding" true
    (List.exists
       (function
         | Campion.Differ.Acl_behavior a ->
             a.Campion.Differ.acl = "mgmt-in"
             && a.Campion.Differ.acl_direction = Campion.Differ.Import
         | _ -> false)
       findings)

let test_campion_acl_wrong_port () =
  let text =
    Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_junos
      [
        Llmsim.Fault.make Llmsim.Error_class.Acl_wrong_port
          (Llmsim.Fault.Policy_entry ("mgmt-in", 10));
      ]
  in
  let translation, _ = Juniper.Parser.parse text in
  let findings = Campion.Differ.compare ~original:border_ir ~translation in
  (* Port 22 vs 23: the witness must be on one of the two ports. *)
  check bool_t "witness on the disputed port" true
    (List.exists
       (function
         | Campion.Differ.Acl_behavior a ->
             let p = a.Campion.Differ.packet.Packet.dst_port in
             p = 22 || p = 23
         | _ -> false)
       findings)

let test_humanizer_acl_prompt () =
  let finding =
    Campion.Differ.Acl_behavior
      {
        Campion.Differ.acl = "mgmt-in";
        iface = Iface.ethernet ~slot:0 ~port:0;
        acl_direction = Campion.Differ.Import;
        packet = pkt ~port:22 "1.2.3.4" "1.1.1.1";
        original_packet_action = Action.Permit;
        translated_packet_action = Action.Deny;
      }
  in
  let p = Cosynth.Humanizer.of_campion finding in
  check bool_t "table-1 style text" true
    (contains ~sub:"the access list mgmt-in applied import on interface Ethernet0/0"
       p.Cosynth.Humanizer.text);
  check bool_t "mentions both actions" true
    (contains ~sub:"PERMIT" p.Cosynth.Humanizer.text
    && contains ~sub:"DENY" p.Cosynth.Humanizer.text);
  check bool_t "has refs" true (p.Cosynth.Humanizer.refs <> [])

let test_translation_loop_fixes_acl_fault () =
  let faults =
    [
      Llmsim.Fault.make Llmsim.Error_class.Acl_action_flipped
        (Llmsim.Fault.Policy_entry ("mgmt-in", 10));
      Llmsim.Fault.make Llmsim.Error_class.Acl_entry_dropped
        (Llmsim.Fault.Policy_entry ("mgmt-in", 20));
    ]
  in
  let r =
    Cosynth.Driver.run_translation ~seed:5 ~force_faults:faults ~suppress_random:true
      ~cisco_text:Cisco.Samples.border_router ()
  in
  check bool_t "verified" true r.Cosynth.Driver.verified;
  (* The final translation's ACL must match the original exactly. *)
  let final_ir, _ = Juniper.Parser.parse r.Cosynth.Driver.final_text in
  check bool_t "acl restored" true
    (Symbolic.Acl_diff.equivalent
       (Option.get (Config_ir.find_acl final_ir "mgmt-in"))
       (Option.get (Config_ir.find_acl border_ir "mgmt-in")))

let test_translation_loop_random_with_acls () =
  List.iter
    (fun seed ->
      let r =
        Cosynth.Driver.run_translation ~seed ~cisco_text:Cisco.Samples.border_router ()
      in
      check bool_t (Printf.sprintf "seed %d verified" seed) true r.Cosynth.Driver.verified)
    [ 21; 22; 23 ]

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_port_set_membership; prop_acl_symbolic_agrees; prop_acl_diff_witnesses ]

let () =
  Alcotest.run "acl"
    [
      ( "port-set",
        [
          Alcotest.test_case "basics" `Quick test_port_set_basics;
          Alcotest.test_case "algebra" `Quick test_port_set_algebra;
        ] );
      ( "concrete",
        [
          Alcotest.test_case "first match" `Quick test_acl_first_match;
          Alcotest.test_case "implicit deny" `Quick test_acl_implicit_deny;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "equivalence" `Quick test_acl_diff_equivalent;
          Alcotest.test_case "flipped action" `Quick test_acl_diff_flipped_action;
          Alcotest.test_case "dropped entry" `Quick test_acl_diff_dropped_entry;
        ] );
      ( "dialects",
        [
          Alcotest.test_case "cisco parses" `Quick test_cisco_acl_parses;
          Alcotest.test_case "cisco round trip" `Quick test_cisco_acl_round_trip;
          Alcotest.test_case "junos round trip" `Quick test_junos_firewall_round_trip;
        ] );
      ( "campion-and-loop",
        [
          Alcotest.test_case "acl difference" `Quick test_campion_acl_difference;
          Alcotest.test_case "wrong port witness" `Quick test_campion_acl_wrong_port;
          Alcotest.test_case "humanizer prompt" `Quick test_humanizer_acl_prompt;
          Alcotest.test_case "loop fixes acl faults" `Quick
            test_translation_loop_fixes_acl_fault;
          Alcotest.test_case "random loops with acls" `Slow
            test_translation_loop_random_with_acls;
        ] );
      ("properties", props);
    ]
