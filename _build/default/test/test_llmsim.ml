(* Tests for the simulated GPT-4: RNG determinism, fault opportunities and
   rendering, and the conversation dynamics. *)

open Netcore
open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Llmsim.Rng.make 7 and b = Llmsim.Rng.make 7 in
  let seq r = List.init 20 (fun _ -> Llmsim.Rng.int r 1000) in
  check bool_t "same seed same sequence" true (seq a = seq b);
  let c = Llmsim.Rng.make 8 in
  check bool_t "different seed different sequence" false (seq (Llmsim.Rng.make 7) = seq c)

let test_rng_float_range () =
  let r = Llmsim.Rng.make 1 in
  for _ = 1 to 1000 do
    let f = Llmsim.Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_choice () =
  let r = Llmsim.Rng.make 2 in
  check bool_t "empty" true (Llmsim.Rng.choice r [] = None);
  for _ = 1 to 100 do
    match Llmsim.Rng.choice r [ 1; 2; 3 ] with
    | Some x when x >= 1 && x <= 3 -> ()
    | _ -> Alcotest.fail "choice outside list"
  done

let test_rng_split_independent () =
  let r = Llmsim.Rng.make 3 in
  let a, b = Llmsim.Rng.split r in
  let seq r = List.init 10 (fun _ -> Llmsim.Rng.int r 1000) in
  check bool_t "split streams differ" false (seq a = seq b)

(* ------------------------------------------------------------------ *)
(* Fault opportunities and rendering                                   *)
(* ------------------------------------------------------------------ *)

let border_ir = fst (Cisco.Parser.parse Cisco.Samples.border_router)
let correct_junos = Juniper.Translate.of_cisco_ir border_ir

let star = Star.make ~routers:4
let hub_task = List.hd (Cosynth.Modularizer.plan star)
let hub_correct = hub_task.Cosynth.Modularizer.correct

let has_class cls faults =
  List.exists
    (fun (f : Llmsim.Fault.t) -> Llmsim.Error_class.equal f.Llmsim.Fault.class_ cls)
    faults

let test_junos_opportunities () =
  let ops = Llmsim.Fault.opportunities Llmsim.Fault.Junos_cfg correct_junos in
  List.iter
    (fun cls ->
      check bool_t (Llmsim.Error_class.to_string cls) true (has_class cls ops))
    [
      Llmsim.Error_class.Missing_local_as;
      Llmsim.Error_class.Missing_import_policy;
      Llmsim.Error_class.Missing_export_policy;
      Llmsim.Error_class.Ospf_cost_wrong;
      Llmsim.Error_class.Ospf_passive_wrong;
      Llmsim.Error_class.Wrong_med;
      Llmsim.Error_class.Prefix_range_dropped;
      Llmsim.Error_class.Redistribution_unscoped;
    ];
  (* No synthesis-only classes in the translation artifact. *)
  check bool_t "no cli keywords" false (has_class Llmsim.Error_class.Cli_keywords ops)

let test_cisco_opportunities () =
  let ops = Llmsim.Fault.opportunities Llmsim.Fault.Cisco_cfg hub_correct in
  List.iter
    (fun cls ->
      check bool_t (Llmsim.Error_class.to_string cls) true (has_class cls ops))
    [
      Llmsim.Error_class.Cli_keywords;
      Llmsim.Error_class.Match_community_literal;
      Llmsim.Error_class.Community_not_additive;
      Llmsim.Error_class.And_or_confusion;
      Llmsim.Error_class.Wrong_local_as;
      Llmsim.Error_class.Missing_neighbor_decl;
      Llmsim.Error_class.Missing_network_decl;
    ]

let render_with cls target =
  Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_junos [ Llmsim.Fault.make cls target ]

let test_render_no_faults_is_clean () =
  let text = Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_junos [] in
  check bool_t "clean" true (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Junos text)

let test_render_missing_local_as () =
  let text = render_with Llmsim.Error_class.Missing_local_as Llmsim.Fault.Whole_config in
  check bool_t "no autonomous-system line" false (contains ~sub:"autonomous-system" text);
  check bool_t "no local-as line" false (contains ~sub:"local-as" text);
  check bool_t "syntax error detected" false
    (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Junos text)

let test_render_bad_prefix_list () =
  let text =
    render_with Llmsim.Error_class.Bad_prefix_list_syntax
      (Llmsim.Fault.Named_list "our-networks")
  in
  check bool_t "contains the /24-32 shorthand" true (contains ~sub:"1.2.3.0/24-32" text);
  let _, diags = Batfish.Parse_check.check Batfish.Parse_check.Junos text in
  check bool_t "targeted error" true
    (List.exists
       (fun d -> contains ~sub:"not valid Juniper syntax" (Diag.to_string d))
       diags)

let test_render_cli_keywords () =
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub_correct
      [ Llmsim.Fault.make Llmsim.Error_class.Cli_keywords Llmsim.Fault.Whole_config ]
  in
  check bool_t "has configure terminal" true (contains ~sub:"configure terminal" text);
  let _, diags = Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios text in
  check bool_t "flagged" true
    (List.exists (fun d -> contains ~sub:"CLI command" (Diag.to_string d)) diags)

let test_render_neighbor_outside_bgp () =
  let spoke_addr = Ipv4.of_string_exn "1.0.0.2" in
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub_correct
      [
        Llmsim.Fault.make Llmsim.Error_class.Neighbor_outside_bgp
          (Llmsim.Fault.Neighbor spoke_addr);
      ]
  in
  let _, diags = Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios text in
  check bool_t "flagged misplaced" true
    (List.exists
       (fun d -> contains ~sub:"only valid inside a 'router bgp'" (Diag.to_string d))
       diags)

let test_render_and_or_confusion () =
  let map = Cosynth.Modularizer.egress_map_name "R2" in
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub_correct
      [ Llmsim.Fault.make Llmsim.Error_class.And_or_confusion (Llmsim.Fault.Policy map) ]
  in
  let ir, diags = Cisco.Parser.parse text in
  check int_t "still parses" 0 (List.length diags);
  let m = Option.get (Config_ir.find_route_map ir map) in
  (* All community matches merged into a single deny stanza. *)
  let denies =
    List.filter
      (fun (e : Route_map.entry) -> e.Route_map.action = Action.Deny)
      m.Route_map.entries
  in
  check int_t "one deny stanza" 1 (List.length denies);
  check int_t "two matches in it (AND)" 2 (List.length (List.hd denies).Route_map.matches)

let test_render_match_community_literal () =
  let map = Cosynth.Modularizer.egress_map_name "R2" in
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub_correct
      [
        Llmsim.Fault.make Llmsim.Error_class.Match_community_literal
          (Llmsim.Fault.Policy_entry (map, 10));
      ]
  in
  let _, diags = Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios text in
  check bool_t "literal flagged" true
    (List.exists
       (fun d -> contains ~sub:"'match community" (Diag.to_string d) && Diag.is_error d)
       diags)

let test_render_ir_fault_changes_semantics () =
  let map_name = Cosynth.Modularizer.ingress_map_name "R2" in
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub_correct
      [
        Llmsim.Fault.make Llmsim.Error_class.Community_not_additive
          (Llmsim.Fault.Policy_entry (map_name, 10));
      ]
  in
  let ir, _ = Cisco.Parser.parse text in
  let m = Option.get (Config_ir.find_route_map ir map_name) in
  match (List.hd m.Route_map.entries).Route_map.sets with
  | [ Route_map.Set_community { additive; _ } ] -> check bool_t "not additive" false additive
  | _ -> Alcotest.fail "expected one set community"

(* ------------------------------------------------------------------ *)
(* Chat dynamics                                                       *)
(* ------------------------------------------------------------------ *)

let test_chat_deterministic () =
  let drafts seed =
    let chat = Llmsim.Chat.start ~seed Llmsim.Fault.Junos_cfg ~correct:correct_junos in
    Llmsim.Chat.draft chat
  in
  check bool_t "same seed same draft" true (drafts 5 = drafts 5)

let test_chat_iip_suppression () =
  let with_iip =
    Llmsim.Chat.start ~seed:5
      ~iips:[ "cfg-files-only"; "community-list-matching"; "additive-community" ]
      Llmsim.Fault.Cisco_cfg ~correct:hub_correct
  in
  check bool_t "no suppressed classes live" true
    (List.for_all
       (fun (f : Llmsim.Fault.t) ->
         match f.Llmsim.Fault.class_ with
         | Llmsim.Error_class.Cli_keywords | Llmsim.Error_class.Match_community_literal
         | Llmsim.Error_class.Community_not_additive ->
             false
         | _ -> true)
       (Llmsim.Chat.live_faults with_iip))

let test_chat_forced_faults_fixable () =
  let f = Llmsim.Fault.make Llmsim.Error_class.Missing_local_as Llmsim.Fault.Whole_config in
  let chat =
    Llmsim.Chat.start ~seed:5 ~force_faults:[ f ] ~suppress_random:true
      ~regression_rate:0.0 ~reintroduction_rate:0.0 Llmsim.Fault.Junos_cfg
      ~correct:correct_junos
  in
  check int_t "one live fault" 1 (List.length (Llmsim.Chat.live_faults chat));
  (* A human prompt always fixes (human_fix = 1.0). *)
  Llmsim.Chat.respond chat (Llmsim.Chat.human_prompt f);
  check int_t "fixed" 0 (List.length (Llmsim.Chat.live_faults chat));
  check int_t "recorded as fixed" 1 (List.length (Llmsim.Chat.fixed_faults chat))

let test_chat_auto_never_fixes_redistribution () =
  let f =
    Llmsim.Fault.make Llmsim.Error_class.Redistribution_unscoped Llmsim.Fault.Whole_config
  in
  let chat =
    Llmsim.Chat.start ~seed:5 ~force_faults:[ f ] ~suppress_random:true
      ~regression_rate:0.0 ~reintroduction_rate:0.0 Llmsim.Fault.Junos_cfg
      ~correct:correct_junos
  in
  for _ = 1 to 20 do
    Llmsim.Chat.respond chat (Llmsim.Chat.auto_prompt f)
  done;
  check int_t "still live after 20 auto prompts" 1
    (List.length (Llmsim.Chat.live_faults chat));
  Llmsim.Chat.respond chat (Llmsim.Chat.human_prompt f);
  check int_t "human fixes" 0 (List.length (Llmsim.Chat.live_faults chat))

let test_chat_prefix_range_morphs () =
  let f =
    Llmsim.Fault.make Llmsim.Error_class.Prefix_range_dropped
      (Llmsim.Fault.Named_list "our-networks")
  in
  let chat =
    Llmsim.Chat.start ~seed:5 ~force_faults:[ f ] ~suppress_random:true
      ~regression_rate:0.0 ~reintroduction_rate:0.0 Llmsim.Fault.Junos_cfg
      ~correct:correct_junos
  in
  (* Auto prompts never fix it directly; eventually it morphs into the bad
     prefix-list syntax. *)
  let rec poke n =
    if n = 0 then Alcotest.fail "never morphed in 50 prompts"
    else
      match Llmsim.Chat.live_faults chat with
      | [ f' ]
        when Llmsim.Error_class.equal f'.Llmsim.Fault.class_
               Llmsim.Error_class.Bad_prefix_list_syntax ->
          ()
      | _ ->
          Llmsim.Chat.respond chat (Llmsim.Chat.auto_prompt f);
          poke (n - 1)
  in
  poke 50;
  check bool_t "target preserved" true
    (match Llmsim.Chat.live_faults chat with
    | [ f' ] -> f'.Llmsim.Fault.target = Llmsim.Fault.Named_list "our-networks"
    | _ -> false)

let test_chat_unmatched_prompt_is_noop () =
  let f = Llmsim.Fault.make Llmsim.Error_class.Missing_local_as Llmsim.Fault.Whole_config in
  let chat =
    Llmsim.Chat.start ~seed:5 ~force_faults:[ f ] ~suppress_random:true
      Llmsim.Fault.Junos_cfg ~correct:correct_junos
  in
  let other = Llmsim.Fault.make Llmsim.Error_class.Wrong_med (Llmsim.Fault.Policy "nope") in
  Llmsim.Chat.respond chat (Llmsim.Chat.human_prompt other);
  check int_t "fault survives unrelated prompt" 1
    (List.length (Llmsim.Chat.live_faults chat))

let test_chat_regression_possible () =
  (* With regression rate 1.0, fixing a fault must introduce another. *)
  let f = Llmsim.Fault.make Llmsim.Error_class.Missing_local_as Llmsim.Fault.Whole_config in
  let chat =
    Llmsim.Chat.start ~seed:5 ~force_faults:[ f ] ~suppress_random:true
      ~regression_rate:1.0 ~reintroduction_rate:0.0 Llmsim.Fault.Junos_cfg
      ~correct:correct_junos
  in
  Llmsim.Chat.respond chat (Llmsim.Chat.human_prompt f);
  check bool_t "a new fault appeared" true (Llmsim.Chat.live_faults chat <> [])

(* Property: rendering with any single fault still yields text the parser
   survives (corrupted drafts never crash the verifiers). *)
let prop_render_total =
  let ops =
    Llmsim.Fault.opportunities Llmsim.Fault.Junos_cfg correct_junos
    @ [
        Llmsim.Fault.make Llmsim.Error_class.Bad_prefix_list_syntax
          (Llmsim.Fault.Named_list "our-networks");
      ]
  in
  QCheck2.Test.make ~name:"junos render/parse total under any fault" ~count:100
    (QCheck2.Gen.int_bound (List.length ops - 1)) (fun i ->
      let f = List.nth ops i in
      let text = Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_junos [ f ] in
      let _, _ = Juniper.Parser.parse text in
      true)

let prop_render_cisco_total =
  let ops = Llmsim.Fault.opportunities Llmsim.Fault.Cisco_cfg hub_correct in
  QCheck2.Test.make ~name:"cisco render/parse total under any fault" ~count:100
    (QCheck2.Gen.int_bound (List.length ops - 1)) (fun i ->
      let f = List.nth ops i in
      let text = Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub_correct [ f ] in
      let _, _ = Cisco.Parser.parse text in
      true)

let props = List.map QCheck_alcotest.to_alcotest [ prop_render_total; prop_render_cisco_total ]

let () =
  Alcotest.run "llmsim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "choice" `Quick test_rng_choice;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "faults",
        [
          Alcotest.test_case "junos opportunities" `Quick test_junos_opportunities;
          Alcotest.test_case "cisco opportunities" `Quick test_cisco_opportunities;
          Alcotest.test_case "clean render" `Quick test_render_no_faults_is_clean;
          Alcotest.test_case "missing local-as" `Quick test_render_missing_local_as;
          Alcotest.test_case "bad prefix list" `Quick test_render_bad_prefix_list;
          Alcotest.test_case "cli keywords" `Quick test_render_cli_keywords;
          Alcotest.test_case "neighbor outside bgp" `Quick test_render_neighbor_outside_bgp;
          Alcotest.test_case "and/or confusion" `Quick test_render_and_or_confusion;
          Alcotest.test_case "match community literal" `Quick
            test_render_match_community_literal;
          Alcotest.test_case "semantic fault" `Quick test_render_ir_fault_changes_semantics;
        ] );
      ( "chat",
        [
          Alcotest.test_case "deterministic" `Quick test_chat_deterministic;
          Alcotest.test_case "iip suppression" `Quick test_chat_iip_suppression;
          Alcotest.test_case "forced faults fixable" `Quick test_chat_forced_faults_fixable;
          Alcotest.test_case "redistribution resists auto" `Quick
            test_chat_auto_never_fixes_redistribution;
          Alcotest.test_case "prefix range morphs" `Quick test_chat_prefix_range_morphs;
          Alcotest.test_case "unmatched prompt noop" `Quick test_chat_unmatched_prompt_is_noop;
          Alcotest.test_case "regression possible" `Quick test_chat_regression_possible;
        ] );
      ("properties", props);
    ]
