(* Tests for the control-plane simulators on richer topologies: multi-hop
   BGP propagation over chains, loop prevention on rings, the OSPF SPF
   computation, and the full OSPF-into-BGP redistribution pipeline. *)

open Netcore
open Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let pfx = Prefix.of_string_exn
let ip = Ipv4.of_string_exn

(* ------------------------------------------------------------------ *)
(* Chains and rings (BGP)                                              *)
(* ------------------------------------------------------------------ *)

let chain5 = Topo_gen.chain ~routers:5
let chain5_net = { Batfish.Bgp_sim.topology = chain5; configs = Batfish.Plain_bgp.configs chain5 }
let chain5_ribs = Batfish.Bgp_sim.run chain5_net

let test_chain_propagates_end_to_end () =
  (* R5 learns R1's stub network across four hops. *)
  match Batfish.Bgp_sim.lookup chain5_ribs ~router:"R5" (pfx "10.1.0.0/24") with
  | Some e ->
      check int_t "as-path length 4" 4 (As_path.length e.Batfish.Bgp_sim.route.Route.as_path);
      check bool_t "path is 4 3 2 1" true
        (As_path.to_list e.Batfish.Bgp_sim.route.Route.as_path = [ 4; 3; 2; 1 ]);
      check bool_t "learned from R4" true (e.Batfish.Bgp_sim.learned_from = Some "R4")
  | None -> Alcotest.fail "R5 must learn 10.1.0.0/24"

let test_chain_everyone_learns_everything () =
  List.iter
    (fun k ->
      List.iter
        (fun j ->
          check bool_t (Printf.sprintf "R%d knows 10.%d.0.0/24" k j) true
            (Batfish.Bgp_sim.reachable chain5_ribs
               ~router:(Printf.sprintf "R%d" k)
               (pfx (Printf.sprintf "10.%d.0.0/24" j))))
        [ 1; 2; 3; 4; 5 ])
    [ 1; 2; 3; 4; 5 ]

let test_ring_converges_and_prefers_short_side () =
  let ring = Topo_gen.ring ~routers:6 in
  let net = { Batfish.Bgp_sim.topology = ring; configs = Batfish.Plain_bgp.configs ring } in
  let ribs = Batfish.Bgp_sim.run net in
  (* R2's route to R1's stub goes directly (1 hop), not the long way. *)
  (match Batfish.Bgp_sim.lookup ribs ~router:"R2" (pfx "10.1.0.0/24") with
  | Some e -> check int_t "one hop" 1 (As_path.length e.Batfish.Bgp_sim.route.Route.as_path)
  | None -> Alcotest.fail "R2 must know R1's stub");
  (* R4 is equidistant-ish: path length must be min(3, 3) = 3. *)
  match Batfish.Bgp_sim.lookup ribs ~router:"R4" (pfx "10.1.0.0/24") with
  | Some e ->
      check int_t "shortest side" 3 (As_path.length e.Batfish.Bgp_sim.route.Route.as_path)
  | None -> Alcotest.fail "R4 must know R1's stub"

let test_ring_no_loops () =
  let ring = Topo_gen.ring ~routers:5 in
  let net = { Batfish.Bgp_sim.topology = ring; configs = Batfish.Plain_bgp.configs ring } in
  let ribs = Batfish.Bgp_sim.run net in
  List.iter
    (fun k ->
      let name = Printf.sprintf "R%d" k in
      List.iter
        (fun (e : Batfish.Bgp_sim.rib_entry) ->
          check bool_t "no own AS in path" false
            (As_path.mem k e.Batfish.Bgp_sim.route.Route.as_path))
        (Batfish.Bgp_sim.rib ribs name))
    [ 1; 2; 3; 4; 5 ]

let test_bgp_prefers_local_pref_then_path_length () =
  (* On the ring, give R4 an import policy on the long-way neighbor (R5)
     that sets a high local preference for R1's stub: R4 must now prefer
     the longer path. *)
  let ring = Topo_gen.ring ~routers:6 in
  let configs = Batfish.Plain_bgp.configs ring in
  let r4 = List.assoc "R4" configs in
  let pl = Prefix_list.make "r1stub" [ Prefix_list.entry 5 (Prefix_range.exact (pfx "10.1.0.0/24")) ] in
  let prefer =
    Route_map.make "PREFER_LONG"
      [
        Route_map.entry ~matches:[ Route_map.Match_prefix_list "r1stub" ]
          ~sets:[ Route_map.Set_local_pref 200 ] 10;
        Route_map.entry 20;
      ]
  in
  let r4 =
    match r4.Config_ir.bgp with
    | Some b ->
        let neighbors =
          List.map
            (fun (n : Config_ir.neighbor) ->
              (* R5's address on the R4-R5 link (link 4, side a = R4...). The
                 session toward R5 is the one whose remote AS is 5. *)
              if n.Config_ir.remote_as = 5 then
                { n with Config_ir.import_policy = Some "PREFER_LONG" }
              else n)
            b.Config_ir.neighbors
        in
        {
          r4 with
          Config_ir.prefix_lists = [ pl ];
          route_maps = [ prefer ];
          bgp = Some { b with Config_ir.neighbors };
        }
    | None -> assert false
  in
  let configs = ("R4", r4) :: List.remove_assoc "R4" configs in
  let ribs = Batfish.Bgp_sim.run { Batfish.Bgp_sim.topology = ring; configs } in
  match Batfish.Bgp_sim.lookup ribs ~router:"R4" (pfx "10.1.0.0/24") with
  | Some e ->
      check int_t "takes the long way (lp wins over length)" 3
        (As_path.length e.Batfish.Bgp_sim.route.Route.as_path);
      check bool_t "via R5" true (e.Batfish.Bgp_sim.learned_from = Some "R5");
      check int_t "local pref applied" 200 e.Batfish.Bgp_sim.route.Route.local_pref
  | None -> Alcotest.fail "R4 must know R1's stub"

(* ------------------------------------------------------------------ *)
(* OSPF                                                                *)
(* ------------------------------------------------------------------ *)

(* A 3-router chain running OSPF: costs accumulate along the path. *)
let ospf_chain_configs ?(passive_middle = false) ?(r1_cost = 10) () =
  let t = Topo_gen.chain ~routers:3 in
  let base = Batfish.Plain_bgp.configs t in
  let with_ospf name config =
    let member_ifaces =
      List.filter_map
        (fun (i : Config_ir.interface) -> Option.map (fun _ -> i.Config_ir.iface) i.Config_ir.address)
        config.Config_ir.interfaces
    in
    let interfaces =
      List.map
        (fun iface ->
          {
            Config_ir.iface;
            cost = (if name = "R1" then Some r1_cost else None);
            passive =
              passive_middle && name = "R2"
              && Iface.equal iface (Iface.ethernet ~slot:0 ~port:2);
            area = 0;
          })
        member_ifaces
    in
    {
      config with
      Config_ir.bgp = None;
      ospf =
        Some
          {
            Config_ir.process_id = 1;
            router_id = None;
            networks = [ (Prefix.default, 0) ];
            interfaces;
            redistributions = [];
          };
    }
  in
  (t, List.map (fun (n, c) -> (n, with_ospf n c)) base)

let test_ospf_costs_accumulate () =
  let t, configs = ospf_chain_configs () in
  let ribs = Batfish.Ospf_sim.run { Batfish.Bgp_sim.topology = t; configs } in
  (* R1 -> R3's stub: R1 out (10) + R2 out (10) + R3 stub interface (10). *)
  check bool_t "cost 30" true
    (Batfish.Ospf_sim.cost_to ribs ~router:"R1" (pfx "10.3.0.0/24") = Some 30);
  (* Own subnet at interface cost. *)
  check bool_t "own stub cost" true
    (Batfish.Ospf_sim.cost_to ribs ~router:"R1" (pfx "10.1.0.0/24") = Some 10)

let test_ospf_explicit_cost_honored () =
  let t, configs = ospf_chain_configs ~r1_cost:55 () in
  let ribs = Batfish.Ospf_sim.run { Batfish.Bgp_sim.topology = t; configs } in
  (* R1's outgoing cost is now 55: 55 + 10 + 10. *)
  check bool_t "cost 75" true
    (Batfish.Ospf_sim.cost_to ribs ~router:"R1" (pfx "10.3.0.0/24") = Some 75)

let test_ospf_passive_blocks_adjacency () =
  let t, configs = ospf_chain_configs ~passive_middle:true () in
  let ribs = Batfish.Ospf_sim.run { Batfish.Bgp_sim.topology = t; configs } in
  (* R2's interface toward R3 is passive: no adjacency, R1 cannot reach
     R3's networks, but R2 still advertises that link's subnet. *)
  check bool_t "R3 stub unreachable from R1" false
    (Batfish.Ospf_sim.reachable ribs ~router:"R1" (pfx "10.3.0.0/24"));
  check bool_t "the passive link's subnet is still advertised" true
    (Batfish.Ospf_sim.reachable ribs ~router:"R1" (pfx "172.16.2.0/24"))

let test_ospf_next_hop () =
  let t, configs = ospf_chain_configs () in
  let ribs = Batfish.Ospf_sim.run { Batfish.Bgp_sim.topology = t; configs } in
  match Batfish.Ospf_sim.lookup ribs ~router:"R1" (pfx "10.3.0.0/24") with
  | Some e -> check bool_t "via R2" true (e.Batfish.Ospf_sim.next_hop = Some "R2")
  | None -> Alcotest.fail "expected a route"

(* ------------------------------------------------------------------ *)
(* OSPF -> BGP redistribution, end to end                              *)
(* ------------------------------------------------------------------ *)

(* The border router of the translation use case, attached to a provider:
   its OSPF interior (loopback + customer LAN) is redistributed into BGP
   through ospf_to_bgp, which only admits 1.2.3.0/24 ge 24. *)
let border_topology =
  {
    Topology.routers =
      [
        {
          Topology.name = "border1";
          asn = 65001;
          router_id = ip "1.1.1.1";
          ports =
            [
              { Topology.iface = Iface.ethernet ~slot:0 ~port:1;
                addr = ip "2.3.4.1";
                subnet = pfx "2.3.4.0/24" };
            ];
          stub_networks = [];
        };
        {
          Topology.name = "provider";
          asn = 65002;
          router_id = ip "2.3.4.5";
          ports =
            [
              { Topology.iface = Iface.ethernet ~slot:0 ~port:1;
                addr = ip "2.3.4.5";
                subnet = pfx "2.3.4.0/24" };
            ];
          stub_networks = [];
        };
      ];
    links =
      [
        {
          Topology.a =
            { Topology.router = "border1";
              iface = Iface.ethernet ~slot:0 ~port:1;
              addr = ip "2.3.4.1" };
          b =
            { Topology.router = "provider";
              iface = Iface.ethernet ~slot:0 ~port:1;
              addr = ip "2.3.4.5" };
          subnet = pfx "2.3.4.0/24";
        };
      ];
  }

let provider_config =
  {
    (Config_ir.empty "provider") with
    Config_ir.interfaces =
      [ Config_ir.interface ~address:(ip "2.3.4.5", 24) (Iface.ethernet ~slot:0 ~port:1) ];
    bgp =
      Some
        {
          Config_ir.asn = 65002;
          router_id = Some (ip "2.3.4.5");
          networks = [];
          neighbors = [ Config_ir.neighbor (ip "2.3.4.1") ~remote_as:65001 ];
          redistributions = [];
        };
  }

let border_without_network_statement =
  (* Drop the BGP network statement so 1.2.3.0/24 can only arrive at the
     provider via redistribution. *)
  let c = fst (Cisco.Parser.parse Cisco.Samples.border_router) in
  match c.Config_ir.bgp with
  | Some b -> { c with Config_ir.bgp = Some { b with Config_ir.networks = [] } }
  | None -> assert false

let redistribution_ribs =
  Batfish.Bgp_sim.run
    {
      Batfish.Bgp_sim.topology = border_topology;
      configs = [ ("border1", border_without_network_statement); ("provider", provider_config) ];
    }

let test_redistribution_delivers_interior_route () =
  (* 1.2.3.0/24 is in OSPF (eth0/0's subnet), admitted by ospf_to_bgp,
     exported through to_provider. *)
  match Batfish.Bgp_sim.lookup redistribution_ribs ~router:"provider" (pfx "1.2.3.0/24") with
  | Some e ->
      check bool_t "via border1" true (e.Batfish.Bgp_sim.learned_from = Some "border1");
      (* to_provider sets MED 50 on our-networks. *)
      check int_t "med set by export policy" 50 e.Batfish.Bgp_sim.route.Route.med
  | None -> Alcotest.fail "provider must learn the redistributed route"

let test_redistribution_filters_loopback () =
  (* The loopback 1.1.1.1/32 is in OSPF but ospf_to_bgp only admits
     1.2.3.0/24 ge 24: it must NOT reach the provider. *)
  check bool_t "loopback not redistributed" false
    (Batfish.Bgp_sim.reachable redistribution_ribs ~router:"provider" (pfx "1.1.1.1/32"))

let test_redistribution_without_route_map_leaks () =
  (* Removing the route map from the redistribution (policy = None) leaks
     every OSPF route, loopback included. *)
  let leaky =
    match border_without_network_statement.Config_ir.bgp with
    | Some b ->
        {
          border_without_network_statement with
          Config_ir.bgp =
            Some
              {
                b with
                Config_ir.redistributions =
                  [ { Config_ir.from_protocol = Route.Ospf; policy = None } ];
              };
        }
    | None -> assert false
  in
  let ribs =
    Batfish.Bgp_sim.run
      {
        Batfish.Bgp_sim.topology = border_topology;
        configs = [ ("border1", leaky); ("provider", provider_config) ];
      }
  in
  (* The loopback now enters border1's BGP table (the leak)... *)
  (match Batfish.Bgp_sim.lookup ribs ~router:"border1" (pfx "1.1.1.1/32") with
  | Some e ->
      check bool_t "ospf-sourced" true (e.Batfish.Bgp_sim.route.Route.source = Route.Ospf)
  | None -> Alcotest.fail "loopback should enter the BGP table");
  (* ...though the to_provider export policy still blocks it downstream —
     defense in depth, matching IOS. With the filtered redistribution it
     never even enters the table: *)
  check bool_t "filtered redistribution keeps it out of the table" false
    (Batfish.Bgp_sim.reachable redistribution_ribs ~router:"border1" (pfx "1.1.1.1/32"))

let test_redistributed_route_keeps_source_until_sent () =
  (* In border1's own RIB the redistributed route is OSPF-sourced (so
     protocol-scoped export policies see it); on the wire it becomes BGP. *)
  (match Batfish.Bgp_sim.lookup redistribution_ribs ~router:"border1" (pfx "1.2.3.0/24") with
  | Some e -> check bool_t "ospf-sourced locally" true (e.Batfish.Bgp_sim.route.Route.source = Route.Ospf)
  | None -> Alcotest.fail "border1 must hold the route");
  match Batfish.Bgp_sim.lookup redistribution_ribs ~router:"provider" (pfx "1.2.3.0/24") with
  | Some e -> check bool_t "bgp on the wire" true (e.Batfish.Bgp_sim.route.Route.source = Route.Bgp)
  | None -> Alcotest.fail "provider must hold the route"

(* ------------------------------------------------------------------ *)
(* Static routes                                                       *)
(* ------------------------------------------------------------------ *)

let test_static_round_trips () =
  let base = Config_ir.empty "r" in
  let cfg =
    {
      base with
      Config_ir.statics =
        [
          { Config_ir.destination = pfx "192.168.0.0/16"; next_hop = ip "2.3.4.9" };
          { Config_ir.destination = pfx "0.0.0.0/0"; next_hop = ip "2.3.4.5" };
        ];
    }
  in
  let cisco_back, d1 = Cisco.Parser.parse (Cisco.Printer.print cfg) in
  check int_t "cisco no diags" 0 (List.length d1);
  check bool_t "cisco round trip" true (cisco_back.Config_ir.statics = cfg.Config_ir.statics);
  let junos_back, d2 = Juniper.Parser.parse (Juniper.Printer.print cfg) in
  check int_t "junos no diags" 0 (List.length d2);
  check bool_t "junos round trip" true (junos_back.Config_ir.statics = cfg.Config_ir.statics)

let test_static_redistribution () =
  (* border1 statically routes a slice of its customer block (so the
     to_provider export policy admits it) and redistributes static into BGP
     through a permissive route map: the provider learns it. *)
  let border =
    let c = border_without_network_statement in
    match c.Config_ir.bgp with
    | Some b ->
        {
          c with
          Config_ir.statics =
            [ { Config_ir.destination = pfx "1.2.3.128/25"; next_hop = ip "1.2.3.4" } ];
          route_maps = c.Config_ir.route_maps @ [ Route_map.permit_all "static_to_bgp" ];
          bgp =
            Some
              {
                b with
                Config_ir.redistributions =
                  b.Config_ir.redistributions
                  @ [ { Config_ir.from_protocol = Route.Static; policy = Some "static_to_bgp" } ];
              };
        }
    | None -> assert false
  in
  let ribs =
    Batfish.Bgp_sim.run
      {
        Batfish.Bgp_sim.topology = border_topology;
        configs = [ ("border1", border); ("provider", provider_config) ];
      }
  in
  match Batfish.Bgp_sim.lookup ribs ~router:"provider" (pfx "1.2.3.128/25") with
  | Some e ->
      check int_t "export policy applied on the way out" 50 e.Batfish.Bgp_sim.route.Route.med
  | None -> Alcotest.fail "provider must learn the redistributed static route"

(* ------------------------------------------------------------------ *)
(* Mixed-vendor network: translate the no-transit hub to Junos         *)
(* ------------------------------------------------------------------ *)

let test_mixed_vendor_no_transit () =
  (* Synthesize the Cisco star, translate the hub to Juniper, re-parse it
     from Junos text, and re-verify the global policy on the mixed-vendor
     network — the two use cases composed. *)
  let star = Star.make ~routers:5 in
  let configs =
    List.map
      (fun (t : Cosynth.Modularizer.router_task) ->
        (t.Cosynth.Modularizer.router, t.Cosynth.Modularizer.correct))
      (Cosynth.Modularizer.plan star)
  in
  let hub = List.assoc "R1" configs in
  let junos_text = Juniper.Printer.print (Juniper.Translate.of_cisco_ir hub) in
  let hub_junos, diags = Juniper.Parser.parse junos_text in
  check int_t "translation parses clean" 0 (List.length diags);
  check bool_t "campion clean" true
    (Campion.Differ.equivalent ~original:hub ~translation:hub_junos);
  let mixed = ("R1", hub_junos) :: List.remove_assoc "R1" configs in
  let ok, violations = Cosynth.Modularizer.no_transit_holds star mixed in
  if not ok then Alcotest.failf "mixed-vendor violations: %s" (String.concat "; " violations);
  check bool_t "proof also goes through" true
    (Cosynth.Lightyear.prove_no_transit star mixed = Cosynth.Lightyear.Proved)

let test_mixed_vendor_faulty_hub_fails () =
  (* A faulty translation of the hub must break the global policy. *)
  let star = Star.make ~routers:5 in
  let configs =
    List.map
      (fun (t : Cosynth.Modularizer.router_task) ->
        (t.Cosynth.Modularizer.router, t.Cosynth.Modularizer.correct))
      (Cosynth.Modularizer.plan star)
  in
  let hub = List.assoc "R1" configs in
  let correct_junos = Juniper.Translate.of_cisco_ir hub in
  let faulty_text =
    Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_junos
      [
        Llmsim.Fault.make Llmsim.Error_class.Missing_export_policy
          (Llmsim.Fault.Neighbor (ip "1.0.0.2"));
      ]
  in
  let hub_junos, _ = Juniper.Parser.parse faulty_text in
  let mixed = ("R1", hub_junos) :: List.remove_assoc "R1" configs in
  let ok, _ = Cosynth.Modularizer.no_transit_holds star mixed in
  check bool_t "transit appears" false ok

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_chain_converges =
  QCheck2.Test.make ~name:"plain-BGP chains of any size converge fully" ~count:15
    (QCheck2.Gen.int_range 2 12) (fun n ->
      let t = Topo_gen.chain ~routers:n in
      let ribs =
        Batfish.Bgp_sim.run { Batfish.Bgp_sim.topology = t; configs = Batfish.Plain_bgp.configs t }
      in
      List.for_all
        (fun k ->
          List.for_all
            (fun j ->
              Batfish.Bgp_sim.reachable ribs
                ~router:(Printf.sprintf "R%d" k)
                (pfx (Printf.sprintf "10.%d.0.0/24" j)))
            (List.init n (fun i -> i + 1)))
        (List.init n (fun i -> i + 1)))

let prop_ring_paths_shortest =
  QCheck2.Test.make ~name:"ring AS-path lengths are graph distances" ~count:10
    (QCheck2.Gen.int_range 3 9) (fun n ->
      let t = Topo_gen.ring ~routers:n in
      let ribs =
        Batfish.Bgp_sim.run { Batfish.Bgp_sim.topology = t; configs = Batfish.Plain_bgp.configs t }
      in
      List.for_all
        (fun k ->
          List.for_all
            (fun j ->
              let d = min (abs (k - j)) (n - abs (k - j)) in
              match
                Batfish.Bgp_sim.lookup ribs
                  ~router:(Printf.sprintf "R%d" k)
                  (pfx (Printf.sprintf "10.%d.0.0/24" j))
              with
              | Some e -> As_path.length e.Batfish.Bgp_sim.route.Route.as_path = d
              | None -> false)
            (List.init n (fun i -> i + 1)))
        (List.init n (fun i -> i + 1)))

let props = List.map QCheck_alcotest.to_alcotest [ prop_chain_converges; prop_ring_paths_shortest ]

let () =
  Alcotest.run "sim"
    [
      ( "bgp-chain-ring",
        [
          Alcotest.test_case "chain propagates" `Quick test_chain_propagates_end_to_end;
          Alcotest.test_case "chain full knowledge" `Quick test_chain_everyone_learns_everything;
          Alcotest.test_case "ring shortest side" `Quick test_ring_converges_and_prefers_short_side;
          Alcotest.test_case "ring no loops" `Quick test_ring_no_loops;
          Alcotest.test_case "local-pref beats path length" `Quick
            test_bgp_prefers_local_pref_then_path_length;
        ] );
      ( "ospf",
        [
          Alcotest.test_case "costs accumulate" `Quick test_ospf_costs_accumulate;
          Alcotest.test_case "explicit cost" `Quick test_ospf_explicit_cost_honored;
          Alcotest.test_case "passive blocks adjacency" `Quick test_ospf_passive_blocks_adjacency;
          Alcotest.test_case "next hop" `Quick test_ospf_next_hop;
        ] );
      ( "redistribution",
        [
          Alcotest.test_case "interior route delivered" `Quick
            test_redistribution_delivers_interior_route;
          Alcotest.test_case "route map filters" `Quick test_redistribution_filters_loopback;
          Alcotest.test_case "no route map leaks" `Quick
            test_redistribution_without_route_map_leaks;
          Alcotest.test_case "source protocol lifecycle" `Quick
            test_redistributed_route_keeps_source_until_sent;
        ] );
      ( "statics",
        [
          Alcotest.test_case "round trips" `Quick test_static_round_trips;
          Alcotest.test_case "redistribution" `Quick test_static_redistribution;
        ] );
      ( "mixed-vendor",
        [
          Alcotest.test_case "translated hub preserves no-transit" `Quick
            test_mixed_vendor_no_transit;
          Alcotest.test_case "faulty translation breaks it" `Quick
            test_mixed_vendor_faulty_hub_fails;
        ] );
      ("properties", props);
    ]
