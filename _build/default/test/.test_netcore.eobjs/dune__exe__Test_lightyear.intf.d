test/test_lightyear.mli:
