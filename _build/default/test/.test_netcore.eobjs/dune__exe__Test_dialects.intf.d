test/test_dialects.mli:
