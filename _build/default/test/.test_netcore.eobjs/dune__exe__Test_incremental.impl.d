test/test_incremental.ml: Action Alcotest Batfish Cisco Config_ir Cosynth List Llmsim Netcore Option Policy Printf Route_map
