test/test_policy.mli:
