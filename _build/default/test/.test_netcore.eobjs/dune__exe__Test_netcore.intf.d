test/test_netcore.mli:
