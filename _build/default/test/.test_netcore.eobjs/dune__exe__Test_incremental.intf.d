test/test_incremental.mli:
