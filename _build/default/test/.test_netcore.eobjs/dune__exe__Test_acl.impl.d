test/test_acl.ml: Acl Action Alcotest Campion Cisco Config_ir Cosynth Iface Ipv4 Juniper List Llmsim Netcore Option Packet Policy Prefix Printf QCheck2 QCheck_alcotest String Symbolic
