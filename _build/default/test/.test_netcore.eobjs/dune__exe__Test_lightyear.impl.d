test/test_lightyear.ml: Action Alcotest Batfish Cisco Community Community_list Cosynth Eval Ipv4 List Llmsim Netcore Policy Prefix QCheck2 QCheck_alcotest Route Route_map Star Symbolic Topoverify
