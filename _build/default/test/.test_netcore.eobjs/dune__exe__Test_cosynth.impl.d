test/test_cosynth.ml: Action Alcotest Batfish Campion Cisco Community Config_ir Cosynth Diag Iface Ipv4 List Llmsim Netcore Policy Prefix Printf Route Star String Symbolic Topoverify
