test/test_llmsim.ml: Action Alcotest Batfish Cisco Config_ir Cosynth Diag Ipv4 Juniper List Llmsim Netcore Option Policy QCheck2 QCheck_alcotest Route_map Star String
