test/test_acl.mli:
