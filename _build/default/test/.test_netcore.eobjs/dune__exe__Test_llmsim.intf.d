test/test_llmsim.mli:
