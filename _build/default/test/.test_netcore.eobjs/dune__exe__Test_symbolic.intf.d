test/test_symbolic.mli:
