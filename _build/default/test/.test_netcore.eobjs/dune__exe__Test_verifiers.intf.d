test/test_verifiers.mli:
