test/test_netcore.ml: Alcotest As_path Community Iface Ipv4 Json List Netcore Prefix Prefix_range QCheck2 QCheck_alcotest Result Star String Topology
