test/test_cosynth.mli:
