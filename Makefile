.PHONY: all build test check bench chaos clean

all: build

build:
	dune build

test:
	dune runtest

# Build + tests + one-seed smoke run of the bench harness (exercises the
# parallel sweep plumbing end-to-end) + the full-scale chaos sweep (the
# check alias runs both bench modes).
check:
	dune build @check

bench:
	dune exec bench/main.exe

# The resilience acceptance gate: 20 seeds x 4 fault schedules over both
# VPP loops; fails on any uncaught exception, budget overrun, or rate-0
# transcript drift.
chaos:
	dune exec bench/main.exe -- --chaos

clean:
	dune clean
