.PHONY: all build test check bench chaos fuzz adversary resume-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Build + tests + one-seed smoke run of the bench harness (exercises the
# parallel sweep plumbing end-to-end) + the full-scale chaos sweep + a
# small-budget fuzz pass + a smoke-budget adversary gate (the check alias
# runs all four bench modes).
check:
	dune build @check

bench:
	dune exec bench/main.exe

# The resilience acceptance gate: C1 (20 seeds x 4 fault schedules over
# both VPP loops; fails on any uncaught exception, budget overrun, or
# rate-0 transcript drift) + C2 (supervised sweeps under worker-domain
# loss: abandonment, checkpoint/resume, per-verifier policies).
chaos:
	dune exec bench/main.exe -- --chaos

# The input-robustness gate: F1 (regression corpus replay, the planted-bug
# canary, then >= 200 seeded deterministic mutations per dialect through
# every pipeline stage behind the Guard firewall; exits nonzero on any
# unguarded escape). COSYNTH_FUZZ_SEEDS / COSYNTH_FUZZ_MUTATIONS scale the
# budget.
fuzz:
	dune exec bench/main.exe -- --fuzz

# The Byzantine-robustness gate: A1 (rate-0 byte-identity against the
# unhardened driver, then a leverage/convergence sweep over every
# adversary mode x injection rate with per-run budget and certificate
# checks, >= 200 corrupted-findings cases per feedback mode, and
# loop-level fuzzing of every LLM mode; exits nonzero on any violation).
adversary:
	dune exec bench/main.exe -- --adversary

# Crash/resume end-to-end: run a journaled chaos sweep, kill it halfway
# via --halt-after (exit 3 is the simulated crash), resume from the
# journal, and demand stdout byte-identical to an uninterrupted sweep.
RESUME_TMP := $(shell mktemp -d)
resume-smoke: build
	dune exec bin/cosynth_cli.exe -- chaos --use-case no-transit --runs 12 \
	  --routers 5 --worker-loss-rate 0.15 --flake-rate 0.1 \
	  > $(RESUME_TMP)/full.out
	sh -c 'dune exec bin/cosynth_cli.exe -- chaos --use-case no-transit \
	  --runs 12 --routers 5 --worker-loss-rate 0.15 --flake-rate 0.1 \
	  --journal $(RESUME_TMP)/sweep.jsonl --halt-after 6 \
	  > $(RESUME_TMP)/halted.out; test $$? -eq 3'
	dune exec bin/cosynth_cli.exe -- chaos --use-case no-transit --runs 12 \
	  --routers 5 --worker-loss-rate 0.15 --flake-rate 0.1 \
	  --journal $(RESUME_TMP)/sweep.jsonl --resume \
	  > $(RESUME_TMP)/resumed.out
	cmp $(RESUME_TMP)/full.out $(RESUME_TMP)/resumed.out
	@rm -rf $(RESUME_TMP)
	@echo "resume-smoke: resumed sweep byte-identical to the uninterrupted one"

clean:
	dune clean
