.PHONY: all build test check bench chaos fuzz adversary adversary-verifier-smoke adversary-collusion-smoke serve-bench resume-smoke shard-smoke serve-smoke serve-overload-smoke durable durable-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Build + tests + one-seed smoke run of the bench harness (exercises the
# parallel sweep plumbing end-to-end) + the full-scale chaos sweep + a
# small-budget fuzz pass + smoke-budget adversary, adversary-verifier,
# serve, serve-overload and durability gates (the check alias runs all
# eight bench modes) + the shard, serve, serve-overload,
# adversary-verifier and durable end-to-end smokes.
check: shard-smoke serve-smoke serve-overload-smoke adversary-verifier-smoke adversary-collusion-smoke durable-smoke
	dune build @check

bench:
	dune exec bench/main.exe

# The resilience acceptance gate: C1 (20 seeds x 4 fault schedules over
# both VPP loops; fails on any uncaught exception, budget overrun, or
# rate-0 transcript drift) + C2 (supervised sweeps under worker-domain
# loss: abandonment, checkpoint/resume, per-verifier policies).
chaos:
	dune exec bench/main.exe -- --chaos

# The input-robustness gate: F1 (regression corpus replay, the planted-bug
# canary, then >= 200 seeded deterministic mutations per dialect through
# every pipeline stage behind the Guard firewall; exits nonzero on any
# unguarded escape). COSYNTH_FUZZ_SEEDS / COSYNTH_FUZZ_MUTATIONS scale the
# budget.
fuzz:
	dune exec bench/main.exe -- --fuzz

# The Byzantine-robustness gate: A1 (rate-0 byte-identity against the
# unhardened driver, then a leverage/convergence sweep over every
# adversary mode x injection rate with per-run budget and certificate
# checks, >= 200 corrupted-findings cases per feedback mode, and
# loop-level fuzzing of every LLM mode; exits nonzero on any violation).
adversary:
	dune exec bench/main.exe -- --adversary

# The Byzantine-verifier gate: A2 (rate-0 byte-identity with the lie
# engine armed at all-zero rates, then a lie-mode x rate x trust-on/off
# sweep pinning that cross-checks against the raw oracle restore the
# verified end state a lying verifier destroys — within the per-run check
# budget, with trust-off runs spending nothing) + a CLI drill that a
# heavy false-negative liar ends up quarantined.
adversary-verifier-smoke: build
	dune exec bench/main.exe -- --adversary-verifier --smoke
	$(CLI) adversary --runs 4 --lie-fn 0.9 --trust | grep -Eq 'quarantines=[1-9]'
	@echo "adversary-verifier-smoke: lies detected, liar quarantined, runs verified"

# The collusion gate: A3 (the rate-0 / honest-quorum / restored-ledger
# byte-identity pins, then the verified-rate headline across oracle-only /
# quorum K=4 / quorum K=3 defenses against a coalition that owns the
# cross-check oracle) + a CLI drill that a 3-kind coalition including the
# oracle gets the oracle quarantined while every run still converges + the
# persistent-ledger crash drill — a collusion sweep killed mid-run via
# --halt-after (exit 3) and resumed from its journal AND trust ledger must
# reproduce both the uninterrupted sweep's stdout and its final ledger
# byte-for-byte, proving quarantine state survives the restart.
COLLUDE_TMP := $(shell mktemp -d)
COLLUDE_ARGS := --runs 8 --seed 9980 --collude parse-check,campion \
  --collude-oracle --collude-rate 0.35
adversary-collusion-smoke: build
	dune exec bench/main.exe -- --adversary-collusion --smoke
	$(CLI) adversary --runs 6 --seed 9980 \
	  --collude parse-check,route-policies,bgp-sim --collude-oracle \
	  --collude-rate 0.35 --trust > $(COLLUDE_TMP)/drill.out
	grep -Eq 'converged=6' $(COLLUDE_TMP)/drill.out
	grep -Eq 'oracle-quarantines=[1-9]' $(COLLUDE_TMP)/drill.out
	$(CLI) adversary $(COLLUDE_ARGS) \
	  --trust-ledger $(COLLUDE_TMP)/full-trust.jsonl \
	  --journal $(COLLUDE_TMP)/full.jsonl > $(COLLUDE_TMP)/full.out 2>/dev/null
	sh -c '$(CLI) adversary $(COLLUDE_ARGS) \
	  --trust-ledger $(COLLUDE_TMP)/trust.jsonl \
	  --journal $(COLLUDE_TMP)/sweep.jsonl --halt-after 4 \
	  > $(COLLUDE_TMP)/halted.out 2>/dev/null; test $$? -eq 3'
	$(CLI) adversary $(COLLUDE_ARGS) \
	  --trust-ledger $(COLLUDE_TMP)/trust.jsonl \
	  --journal $(COLLUDE_TMP)/sweep.jsonl --resume \
	  > $(COLLUDE_TMP)/resumed.out 2>/dev/null
	cmp $(COLLUDE_TMP)/full.out $(COLLUDE_TMP)/resumed.out
	cmp $(COLLUDE_TMP)/full-trust.jsonl $(COLLUDE_TMP)/trust.jsonl
	@rm -rf $(COLLUDE_TMP)
	@echo "adversary-collusion-smoke: coalition overruled, oracle quarantined, ledger survives the crash"

# The service-mode gate: S1 (the same synthesis jobs through a warm
# in-process `serve` daemon vs cold per-job pool + memo startup; fails on
# any result drift, a cold warm cache, or a daemon slower than cold).
serve-bench:
	dune exec bench/main.exe -- --serve

# Crash/resume end-to-end: run a journaled chaos sweep, kill it halfway
# via --halt-after (exit 3 is the simulated crash), resume from the
# journal, and demand stdout byte-identical to an uninterrupted sweep.
RESUME_TMP := $(shell mktemp -d)
resume-smoke: build
	dune exec bin/cosynth_cli.exe -- chaos --use-case no-transit --runs 12 \
	  --routers 5 --worker-loss-rate 0.15 --flake-rate 0.1 \
	  > $(RESUME_TMP)/full.out
	sh -c 'dune exec bin/cosynth_cli.exe -- chaos --use-case no-transit \
	  --runs 12 --routers 5 --worker-loss-rate 0.15 --flake-rate 0.1 \
	  --journal $(RESUME_TMP)/sweep.jsonl --halt-after 6 \
	  > $(RESUME_TMP)/halted.out; test $$? -eq 3'
	dune exec bin/cosynth_cli.exe -- chaos --use-case no-transit --runs 12 \
	  --routers 5 --worker-loss-rate 0.15 --flake-rate 0.1 \
	  --journal $(RESUME_TMP)/sweep.jsonl --resume \
	  > $(RESUME_TMP)/resumed.out
	cmp $(RESUME_TMP)/full.out $(RESUME_TMP)/resumed.out
	@rm -rf $(RESUME_TMP)
	@echo "resume-smoke: resumed sweep byte-identical to the uninterrupted one"

# Sharded sweep end-to-end: 2 worker processes (shard 0 killed mid-slice
# via --halt-first and recovered from its journal) vs the sequential run;
# the coordinator's stdout AND the merged journal must both be
# byte-identical to the unsharded sweep.
SHARD_TMP := $(shell mktemp -d)
shard-smoke: build
	dune exec bin/cosynth_cli.exe -- chaos --use-case no-transit --runs 8 \
	  --routers 5 --flake-rate 0.1 --journal $(SHARD_TMP)/seq.jsonl \
	  > $(SHARD_TMP)/seq.out 2>/dev/null
	dune exec bin/cosynth_cli.exe -- shard --shards 2 --use-case no-transit \
	  --runs 8 --routers 5 --flake-rate 0.1 --halt-first 2 \
	  --journal-dir $(SHARD_TMP)/shards > $(SHARD_TMP)/shard.out
	cmp $(SHARD_TMP)/seq.jsonl $(SHARD_TMP)/shards/merged.jsonl
	cmp $(SHARD_TMP)/seq.out $(SHARD_TMP)/shard.out
	@rm -rf $(SHARD_TMP)
	@echo "shard-smoke: 2-shard sweep (with a worker death) byte-identical to sequential"

# Service mode end-to-end: start the daemon, drive every job kind through
# the client over one socket, shut it down cleanly. The built binary is
# invoked directly: a backgrounded `dune exec` would hold the dune lock
# for the daemon's whole lifetime and deadlock the client invocations.
SERVE_TMP := $(shell mktemp -d)
CLI := ./_build/default/bin/cosynth_cli.exe
serve-smoke: build
	$(CLI) serve --socket $(SERVE_TMP)/cosynth.sock -j 2 \
	  > $(SERVE_TMP)/serve.out & \
	$(CLI) client --socket $(SERVE_TMP)/cosynth.sock ping && \
	$(CLI) client --socket $(SERVE_TMP)/cosynth.sock synth --seed 42 --routers 5 --count 2 && \
	$(CLI) client --socket $(SERVE_TMP)/cosynth.sock translate && \
	$(CLI) client --socket $(SERVE_TMP)/cosynth.sock repair && \
	$(CLI) client --socket $(SERVE_TMP)/cosynth.sock stats && \
	$(CLI) client --socket $(SERVE_TMP)/cosynth.sock shutdown && \
	wait
	@rm -rf $(SERVE_TMP)
	@echo "serve-smoke: daemon served every job kind and shut down cleanly"

# Service hardening end-to-end: the S2 overload gate (admission, deadline,
# drain invariants against the in-process daemon) followed by the
# supervisor smoke — crash the daemon via the debug `crash` job, let the
# supervisor respawn it, confirm the restart count in `health`, then drain
# and demand the socket gone. Same direct-binary discipline as
# serve-smoke: a backgrounded `dune exec` would hold the dune lock.
OVERLOAD_TMP := $(shell mktemp -d)
serve-overload-smoke: build
	dune exec bench/main.exe -- --serve-overload --smoke
	$(CLI) serve --socket $(OVERLOAD_TMP)/cosynth.sock --supervise \
	  --debug-jobs --triage $(OVERLOAD_TMP)/triage.jsonl \
	  > $(OVERLOAD_TMP)/serve.out 2>&1 & \
	$(CLI) client --socket $(OVERLOAD_TMP)/cosynth.sock --connect-budget-ms 5000 ping && \
	$(CLI) client --socket $(OVERLOAD_TMP)/cosynth.sock crash && \
	sleep 1 && \
	$(CLI) client --socket $(OVERLOAD_TMP)/cosynth.sock --connect-budget-ms 5000 health \
	  | grep -q '"restarts":1' && \
	$(CLI) client --socket $(OVERLOAD_TMP)/cosynth.sock sleep --ms 600 --deadline-ms 100; \
	test $$? -eq 1 && \
	$(CLI) client --socket $(OVERLOAD_TMP)/cosynth.sock drain && \
	sleep 1 && \
	test ! -e $(OVERLOAD_TMP)/cosynth.sock && \
	$(CLI) triage $(OVERLOAD_TMP)/triage.jsonl | grep -q Deadline_exceeded && \
	wait
	@rm -rf $(OVERLOAD_TMP)
	@echo "serve-overload-smoke: overload gate, crash/respawn, deadline, drain all clean"

# The durability gate: D1 — every persistence surface (checkpoint
# journal, trust ledger, crash triage, corpus promotion) killed at every
# write point of a recorded fault schedule and recovered to a clean
# prefix; exhaustive truncation and single-bit-flip sweeps over the CRC
# framing (reads total, no phantom records); atomic-promotion crash
# states; fault-off byte-identity with the chaos layer armed at zero
# rates.
durable:
	dune exec bench/main.exe -- --durable

# Durable-state end-to-end against the real binary: D1 at smoke budget,
# then four drills. (1) a journaled chaos sweep killed by an injected
# disk crash (exit 3, the kill/resume convention) and resumed fault-off:
# stdout and the LWW-compacted journal must be byte-identical to an
# intact run's. (2) the same sweep under silent torn writes: stdout
# unaffected, `fsck` counts the damage (exit 1), a resume re-runs
# exactly the torn seeds and the compacted record sets converge (sorted
# compare: re-run seeds land at the tail, order is not part of the
# contract after a torn loss). (3) a 2-shard sweep whose workers both
# die from the injected crash and are respawned on their resume argv:
# merged journal and stdout byte-identical to sequential. (4) a
# collusion sweep's trust ledger killed mid-fsync and resumed: the final
# ledger is byte-identical to the intact run's. Plus the SIGHUP
# hot-reload hardening: a truncated admission file must be rejected
# (reload_rejected=1 in health) with the old caps kept in force.
DURABLE_TMP := $(shell mktemp -d)
DURABLE_CHAOS := chaos --use-case no-transit --runs 6 --routers 5 --flake-rate 0.1
DURABLE_ADV := adversary --runs 6 --seed 9980 --collude parse-check,campion \
  --collude-oracle --collude-rate 0.35
durable-smoke: build
	dune exec bench/main.exe -- --durable --smoke
	$(CLI) $(DURABLE_CHAOS) --journal $(DURABLE_TMP)/full.jsonl \
	  > $(DURABLE_TMP)/full.out 2>/dev/null
	sh -c '$(CLI) $(DURABLE_CHAOS) --journal $(DURABLE_TMP)/sweep.jsonl \
	  --disk-crash-after 5 > $(DURABLE_TMP)/halted.out 2>/dev/null; test $$? -eq 3'
	$(CLI) $(DURABLE_CHAOS) --journal $(DURABLE_TMP)/sweep.jsonl --resume \
	  > $(DURABLE_TMP)/resumed.out 2>/dev/null
	cmp $(DURABLE_TMP)/full.out $(DURABLE_TMP)/resumed.out
	$(CLI) fsck $(DURABLE_TMP)/sweep.jsonl --lww > /dev/null
	$(CLI) fsck $(DURABLE_TMP)/full.jsonl --lww > /dev/null
	cmp $(DURABLE_TMP)/full.jsonl $(DURABLE_TMP)/sweep.jsonl
	$(CLI) $(DURABLE_CHAOS) --journal $(DURABLE_TMP)/torn.jsonl \
	  --disk-torn-rate 0.4 --disk-seed 7 > $(DURABLE_TMP)/torn.out 2>/dev/null
	cmp $(DURABLE_TMP)/full.out $(DURABLE_TMP)/torn.out
	sh -c '$(CLI) fsck $(DURABLE_TMP)/torn.jsonl > /dev/null; test $$? -eq 1'
	$(CLI) $(DURABLE_CHAOS) --journal $(DURABLE_TMP)/torn.jsonl --resume \
	  > $(DURABLE_TMP)/torn-resumed.out 2>/dev/null
	cmp $(DURABLE_TMP)/full.out $(DURABLE_TMP)/torn-resumed.out
	sh -c '$(CLI) fsck $(DURABLE_TMP)/torn.jsonl --lww > /dev/null; test $$? -eq 1'
	sort $(DURABLE_TMP)/torn.jsonl > $(DURABLE_TMP)/torn.sorted
	sort $(DURABLE_TMP)/full.jsonl > $(DURABLE_TMP)/full.sorted
	cmp $(DURABLE_TMP)/torn.sorted $(DURABLE_TMP)/full.sorted
	$(CLI) chaos --use-case no-transit --runs 8 --routers 5 --flake-rate 0.1 \
	  --journal $(DURABLE_TMP)/seq.jsonl > $(DURABLE_TMP)/seq.out 2>/dev/null
	$(CLI) shard --shards 2 --use-case no-transit --runs 8 --routers 5 \
	  --flake-rate 0.1 --disk-crash-after 5 --journal-dir $(DURABLE_TMP)/shards \
	  > $(DURABLE_TMP)/shard.out 2>/dev/null
	cmp $(DURABLE_TMP)/seq.jsonl $(DURABLE_TMP)/shards/merged.jsonl
	cmp $(DURABLE_TMP)/seq.out $(DURABLE_TMP)/shard.out
	$(CLI) $(DURABLE_ADV) --trust-ledger $(DURABLE_TMP)/full-trust.jsonl \
	  --journal $(DURABLE_TMP)/afull.jsonl > $(DURABLE_TMP)/afull.out 2>/dev/null
	sh -c '$(CLI) $(DURABLE_ADV) --trust-ledger $(DURABLE_TMP)/trust.jsonl \
	  --journal $(DURABLE_TMP)/asweep.jsonl --disk-crash-after 9 \
	  > $(DURABLE_TMP)/ahalted.out 2>/dev/null; test $$? -eq 3'
	$(CLI) $(DURABLE_ADV) --trust-ledger $(DURABLE_TMP)/trust.jsonl \
	  --journal $(DURABLE_TMP)/asweep.jsonl --resume \
	  > $(DURABLE_TMP)/aresumed.out 2>/dev/null
	cmp $(DURABLE_TMP)/afull.out $(DURABLE_TMP)/aresumed.out
	$(CLI) fsck $(DURABLE_TMP)/trust.jsonl --lww > /dev/null
	$(CLI) fsck $(DURABLE_TMP)/full-trust.jsonl --lww > /dev/null
	cmp $(DURABLE_TMP)/full-trust.jsonl $(DURABLE_TMP)/trust.jsonl
	sh -c 'echo "{\"max_in_flight\": 4}" > $(DURABLE_TMP)/caps.json; \
	  $(CLI) serve --socket $(DURABLE_TMP)/reload.sock \
	    --admission-file $(DURABLE_TMP)/caps.json > /dev/null 2>&1 & pid=$$!; \
	  sleep 1; \
	  printf "{\"max_in_flight\": 2, \"max_qu" > $(DURABLE_TMP)/caps.json; \
	  kill -HUP $$pid; sleep 1; \
	  $(CLI) client --socket $(DURABLE_TMP)/reload.sock --connect-budget-ms 5000 \
	    health | grep -q "\"reload_rejected\":1"; ok=$$?; \
	  $(CLI) client --socket $(DURABLE_TMP)/reload.sock shutdown > /dev/null; \
	  wait $$pid; test $$ok -eq 0'
	@rm -rf $(DURABLE_TMP)
	@echo "durable-smoke: disk crashes recovered, torn writes contained, shards respawned, ledger survived, truncated reload rejected"

clean:
	dune clean
