.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Build + tests + one-seed smoke run of the bench harness (exercises the
# parallel sweep plumbing end-to-end).
check:
	dune build @check

bench:
	dune exec bench/main.exe

clean:
	dune clean
