(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index), then measures the
   performance of the core components with Bechamel.

   Experiment ids:
   - T1  Table 1: sample rectification prompts for translation
   - T2  Table 2: translation errors and whether the generated prompt fixed them
   - L1  Section 3.2: translation leverage (paper: 2 human, ~20 automated, 10x)
   - F4  Figure 4: the star topology generator outputs
   - T3  Table 3: sample rectification prompts for local synthesis
   - L2  Section 4.2: no-transit leverage (paper: 2 human, 12 automated, 6x)
   - G1  Section 4.1: global vs local policy prompting
   - AB1 Ablations: IIPs on/off, leverage vs network size, stall threshold
   - E1-E3 Extensions: modular proof, incremental addition, model quality
     (renamed from S2-S4 when service mode claimed the S prefix)
   - S1  Service mode: warm `cosynth serve` daemon vs cold per-job startup
   - S2  Service hardening: admission, deadlines and drain under overload *)

open Netcore
open Policy

let cisco_text = Cisco.Samples.border_router
let border_ir = fst (Cisco.Parser.parse cisco_text)
let correct_junos = Juniper.Translate.of_cisco_ir border_ir

(* --smoke: 1 seed per experiment and no Bechamel pass — a fast end-to-end
   exercise of the sweep plumbing for the `check` alias / CI.
   --chaos: only the C1 chaos sweep, at full seed count regardless of
   --smoke — the resilience layer's acceptance gate (`make chaos`). *)
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let chaos_only = Array.exists (fun a -> a = "--chaos") Sys.argv

(* --fuzz: only the F1 totality-fuzzing gate (`make fuzz`) — corpus replay,
   the planted-bug canary, then N seeds x M mutations per dialect; exits
   nonzero on any escape. --smoke shrinks the budget for the check alias. *)
let fuzz_only = Array.exists (fun a -> a = "--fuzz") Sys.argv

(* --adversary: only the A1 Byzantine-robustness gate (`make adversary`) —
   leverage vs adversary rate x mode, the rate-0 identity pin, certificate
   presence, and the loop-level fuzzers; exits nonzero on any violation.
   --smoke shrinks the seed and fuzz budgets for the check alias. *)
let adversary_only = Array.exists (fun a -> a = "--adversary") Sys.argv

(* --adversary-verifier: only the A2 Byzantine-verifier gate (`make
   adversary-verifier-smoke`) — lying verifiers (false negative / false
   positive / mutated, adaptive on/off) vs the Resilience.Trust cross-check
   ledger: the rate-0 and honest-trust byte-identity pins, the verified-rate
   headline with trust on vs off, per-run cross-check budget compliance and
   detected-lie counts; exits nonzero on any violation. --smoke shrinks the
   seed budget for the check alias. *)
let adversary_verifier_only =
  Array.exists (fun a -> a = "--adversary-verifier") Sys.argv

(* --adversary-collusion: only the A3 collusion gate (`make
   adversary-collusion-smoke`) — a seeded coalition of verifier kinds lying
   consistently, optionally including the cross-check oracle itself, vs the
   quorum audit layer: the all-zero-collusion and honest-quorum
   byte-identity pins, the restored-ledger-equals-fresh-ledger pin, and the
   verified-rate headline across oracle-only (PR 8) / quorum K=4 /
   quorum K=3 defenses; exits nonzero on any violation. --smoke shrinks the
   seed budget for the check alias. *)
let adversary_collusion_only =
  Array.exists (fun a -> a = "--adversary-collusion") Sys.argv

(* --serve: only the S1 service-mode gate (`make serve-bench`) — the same
   synthesis jobs through a warm in-process daemon vs cold per-job startup;
   exits nonzero when the daemon loses results, state, or throughput.
   --smoke shrinks the job count for the check alias. *)
let serve_only = Array.exists (fun a -> a = "--serve") Sys.argv

(* --serve-overload: only the S2 service-hardening gate (`make
   serve-overload-smoke`) — the hardened Cosynth.Service daemon under a
   2x-capacity burst: unloaded replies byte-identical to the unhardened
   daemon, shed requests carry structured retry frames and succeed on
   retry, expired deadlines answer timeout frames instead of hanging, and
   a mid-burst drain loses zero admitted jobs. --smoke shrinks the burst. *)
let serve_overload_only = Array.exists (fun a -> a = "--serve-overload") Sys.argv

(* --durable: only the D1 durability gate (`make durable`) — every
   persistence surface killed at every write point of a recorded
   schedule and recovered; exhaustive truncation and bit-flip sweeps
   over the CRC framing; fault-off byte-identity; atomic-promotion
   crash states. --smoke shrinks the scripted record budget for the
   check alias. *)
let durable_only = Array.exists (fun a -> a = "--durable") Sys.argv
let runs n = if smoke then 1 else n

(* --journal DIR: checkpoint every seeded sweep (L1/L2/C1) to one journal
   file per sweep under DIR; --resume replays the recorded seeds instead of
   re-running them. Journal notices go to stderr so a resumed run's stdout
   stays comparable to an uninterrupted one. *)
let journal_dir =
  let rec find = function
    | "--journal" :: dir :: _ -> Some dir
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let resume = Array.exists (fun a -> a = "--resume") Sys.argv

let () =
  if resume && journal_dir = None then begin
    Printf.eprintf "error: --resume requires --journal DIR\n%!";
    exit 2
  end;
  match journal_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ()

(* One journal per sweep, named for the table cell that owns it. *)
let journal_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    name

let open_journal dir name ~encode ~decode =
  let safe = journal_name name in
  let j =
    Exec.Sweep.journal ~resume
      ~path:(Filename.concat dir (safe ^ ".jsonl"))
      ~encode ~decode ()
  in
  (match Exec.Sweep.journaled_seeds j with
  | [] -> ()
  | done_ ->
      Printf.eprintf "journal: %s: resuming %d completed seed(s)\n%!" safe
        (List.length done_));
  j

let transcript_journal dir name =
  open_journal dir name ~encode:Cosynth.Driver.transcript_to_json
    ~decode:(fun json ->
      try Some (Cosynth.Driver.transcript_of_json json) with _ -> None)

(* One worker pool for the whole harness; size comes from COSYNTH_POOL_SIZE
   or the machine (Exec.Pool.default_size). *)
let pool = Exec.Pool.create ()

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let print_perf label (p : Cosynth.Metrics.perf) =
  Printf.printf "  %-11s %s\n" label
    (Format.asprintf "%a" Cosynth.Metrics.pp_perf p)

type sweep_report =
  | Two_pass of {
      identical : bool;
      seq_perf : Cosynth.Metrics.perf;
      par_perf : Cosynth.Metrics.perf;
    }
  | Journaled of { replayed : int; fresh : int; perf : Cosynth.Metrics.perf }

(* Run a seeded sweep twice — sequentially and on the pool — check the
   transcripts are byte-identical (determinism is the acceptance bar), and
   report both timings. The memo cache is cleared before each pass so the
   hit rates and wall clocks are comparable.

   Under --journal the sweep instead runs once, pooled, checkpointing each
   completed seed to its own journal file (and replaying recorded seeds
   under --resume); the cross-pass determinism check is the unjournaled
   bench's job. *)
let determinism_sweep ~name ~seeds run =
  match journal_dir with
  | Some dir ->
      Exec.Memo.reset ();
      let j = transcript_journal dir name in
      let replayed = List.length (Exec.Sweep.journaled_seeds j) in
      let ts, perf =
        Cosynth.Metrics.measure ~pool (fun () ->
            Exec.Sweep.run_seeds ~pool ~journal:j ~seeds (fun seed ->
                run ?pool:(Some pool) seed))
      in
      Exec.Sweep.journal_close j;
      (ts, Journaled { replayed; fresh = List.length seeds - replayed; perf })
  | None ->
      Exec.Memo.reset ();
      let seq, seq_perf =
        Cosynth.Metrics.measure (fun () ->
            Exec.Sweep.run_seeds ~seeds (fun seed -> run ?pool:None seed))
      in
      Exec.Memo.reset ();
      let par, par_perf =
        Cosynth.Metrics.measure ~pool (fun () ->
            Exec.Sweep.run_seeds ~pool ~seeds (fun seed -> run ?pool:(Some pool) seed))
      in
      let md (t : Cosynth.Driver.transcript) =
        Cosynth.Driver.transcript_to_markdown ~title:"run" t
      in
      let identical =
        List.for_all2
          (fun a b ->
            md a = md b && Cosynth.Driver.leverage a = Cosynth.Driver.leverage b)
          seq par
      in
      (par, Two_pass { identical; seq_perf; par_perf })

let print_determinism = function
  | Two_pass { identical; seq_perf; par_perf } ->
      Printf.printf "\n  parallel transcripts byte-identical to sequential: %b\n"
        identical;
      print_perf "sequential:" seq_perf;
      print_perf "parallel:" par_perf;
      if par_perf.Cosynth.Metrics.wall_s > 0. then
        Printf.printf "  %-11s %.2fx\n" "speedup:"
          (seq_perf.Cosynth.Metrics.wall_s /. par_perf.Cosynth.Metrics.wall_s)
  | Journaled { replayed; fresh; perf } ->
      Printf.printf "\n  journaled sweep: %d seed(s) replayed, %d run fresh\n"
        replayed fresh;
      print_perf "wall:" perf

(* ------------------------------------------------------------------ *)
(* T1: Table 1 — rectification prompts for translation                 *)
(* ------------------------------------------------------------------ *)

let prompt_for_fault cls target =
  let fault = Llmsim.Fault.make cls target in
  let text = Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_junos [ fault ] in
  let ir, diags = Batfish.Parse_check.check Batfish.Parse_check.Junos text in
  match List.find_opt Diag.is_error diags with
  | Some d -> (Cosynth.Humanizer.of_diag d).Cosynth.Humanizer.text
  | None -> (
      match Campion.Differ.compare ~original:border_ir ~translation:ir with
      | f :: _ -> (Cosynth.Humanizer.of_campion f).Cosynth.Humanizer.text
      | [] -> "(no finding)")

let table_t1 () =
  section "T1 — Table 1: sample rectification prompts for translation";
  let rows =
    [
      ( "Syntax error",
        prompt_for_fault Llmsim.Error_class.Bad_prefix_list_syntax
          (Llmsim.Fault.Named_list "our-networks") );
      ( "Structural mismatch",
        prompt_for_fault Llmsim.Error_class.Missing_import_policy
          (Llmsim.Fault.Neighbor (Ipv4.of_string_exn "2.3.4.5")) );
      ( "Attribute difference",
        prompt_for_fault Llmsim.Error_class.Ospf_cost_wrong
          (Llmsim.Fault.Interface (Iface.loopback 0)) );
      ( "Policy behavior difference",
        prompt_for_fault Llmsim.Error_class.Prefix_range_dropped
          (Llmsim.Fault.Named_list "our-networks") );
    ]
  in
  List.iter (fun (kind, text) -> Printf.printf "[%s]\n  %s\n\n" kind text) rows

(* ------------------------------------------------------------------ *)
(* T2: Table 2 — translation errors found and whether fixed            *)
(* ------------------------------------------------------------------ *)

let table_t2 () =
  section "T2 — Table 2: translation errors and whether the generated prompt fixed them";
  let faults = Cosynth.Driver.table2_faults ~cisco_text in
  let result =
    Cosynth.Driver.run_translation ~seed:7 ~force_faults:faults ~suppress_random:true
      ~cisco_text ()
  in
  let category cls =
    Llmsim.Error_class.category_to_string
      (Llmsim.Error_class.profile cls).Llmsim.Error_class.category
  in
  let fixed cls =
    List.exists
      (fun (o : Cosynth.Driver.class_outcome) ->
        Llmsim.Error_class.equal o.Cosynth.Driver.class_ cls
        && o.Cosynth.Driver.fixed_by_generated_prompt)
      result.Cosynth.Driver.outcomes
  in
  let row cls paper =
    match Llmsim.Error_class.table2_label cls with
    | Some label -> [ label; category cls; (if fixed cls then "Yes" else "No"); paper ]
    | None -> []
  in
  let rows =
    List.filter
      (fun r -> r <> [])
      [
        row Llmsim.Error_class.Missing_local_as "Yes";
        row Llmsim.Error_class.Bad_prefix_list_syntax "Yes";
        row Llmsim.Error_class.Missing_import_policy "Yes";
        row Llmsim.Error_class.Ospf_cost_wrong "Yes";
        row Llmsim.Error_class.Ospf_passive_wrong "Yes";
        row Llmsim.Error_class.Wrong_med "Yes";
        row Llmsim.Error_class.Prefix_range_dropped "No";
        row Llmsim.Error_class.Redistribution_unscoped "No";
      ]
  in
  print_string
    (Cosynth.Report.table ~title:"(measured vs paper)"
       ~header:[ "Error"; "Type"; "Fixed (ours)"; "Fixed (paper)" ]
       rows);
  Printf.printf "\nRun ended verified=%b (Batfish and Campion clean).\n"
    result.Cosynth.Driver.verified

(* ------------------------------------------------------------------ *)
(* L1 / L2: leverage                                                   *)
(* ------------------------------------------------------------------ *)

let table_l1 () =
  section "L1 — Translation leverage (paper: ~20 automated, 2 human, 10x)";
  let n = runs 30 in
  let transcripts, report =
    determinism_sweep ~name:"l1-translation"
      ~seeds:(Exec.Sweep.seeds ~base:1000 ~n)
      (fun ?pool:_ seed ->
        (Cosynth.Driver.run_translation ~seed ~cisco_text ()).Cosynth.Driver.transcript)
  in
  let s = Cosynth.Metrics.summarize transcripts in
  print_string
    (Cosynth.Report.kv
       ~title:(Printf.sprintf "%d seeded runs of the translation VPP loop" n)
       [
         ("converged", Printf.sprintf "%d/%d" s.Cosynth.Metrics.converged s.Cosynth.Metrics.runs);
         ("mean automated prompts", Printf.sprintf "%.1f (paper: ~20)" s.Cosynth.Metrics.mean_auto);
         ("mean human prompts", Printf.sprintf "%.1f (paper: 2)" s.Cosynth.Metrics.mean_human);
         ( "leverage",
           Printf.sprintf "%.1fx mean, %.1f-%.1f range (paper: 10x)"
             s.Cosynth.Metrics.mean_leverage s.Cosynth.Metrics.min_leverage
             s.Cosynth.Metrics.max_leverage );
       ]);
  print_determinism report

let table_l2 () =
  section "L2 — No-transit leverage (paper: 12 automated, 2 human, 6x)";
  let n = runs 30 in
  let transcripts, report =
    (* The pool is threaded into each run too: the per-router synthesis
       tasks fan out across the same workers as the seeds (nested maps are
       safe — the waiting caller helps drain the queue). *)
    determinism_sweep ~name:"l2-no-transit"
      ~seeds:(Exec.Sweep.seeds ~base:2000 ~n)
      (fun ?pool seed ->
        (Cosynth.Driver.run_no_transit ~seed ?pool ~routers:7 ())
          .Cosynth.Driver.transcript)
  in
  let s = Cosynth.Metrics.summarize transcripts in
  print_string
    (Cosynth.Report.kv
       ~title:(Printf.sprintf "%d seeded runs of the 7-router no-transit VPP loop" n)
       [
         ("converged", Printf.sprintf "%d/%d" s.Cosynth.Metrics.converged s.Cosynth.Metrics.runs);
         ("mean automated prompts", Printf.sprintf "%.1f (paper: 12)" s.Cosynth.Metrics.mean_auto);
         ("mean human prompts", Printf.sprintf "%.1f (paper: 2)" s.Cosynth.Metrics.mean_human);
         ( "leverage",
           Printf.sprintf "%.1fx mean, %.1f-%.1f range (paper: 6x)"
             s.Cosynth.Metrics.mean_leverage s.Cosynth.Metrics.min_leverage
             s.Cosynth.Metrics.max_leverage );
       ]);
  print_determinism report

(* ------------------------------------------------------------------ *)
(* F4: Figure 4 — star topology                                        *)
(* ------------------------------------------------------------------ *)

let figure_f4 () =
  section "F4 — Figure 4: star network generator (7 routers)";
  let star = Star.make ~routers:7 in
  Printf.printf "Output 1 — textual description (first lines):\n";
  let lines = String.split_on_char '\n' (Star.description star) in
  List.iteri (fun i l -> if i < 10 && l <> "" then Printf.printf "  %s\n" l) lines;
  Printf.printf "  ... (%d lines total)\n\n" (List.length lines);
  let json = Json.to_string (Star.to_json star) in
  Printf.printf "Output 2 — JSON dictionary: %d bytes, %d routers, %d links\n"
    (String.length json)
    (List.length star.Star.topology.Topology.routers)
    (List.length star.Star.topology.Topology.links)

(* ------------------------------------------------------------------ *)
(* T3: Table 3 — rectification prompts for local synthesis             *)
(* ------------------------------------------------------------------ *)

let table_t3 () =
  section "T3 — Table 3: sample rectification prompts for local synthesis";
  let star = Star.make ~routers:7 in
  let hub = List.hd (Cosynth.Modularizer.plan star) in
  let correct = hub.Cosynth.Modularizer.correct in
  (* Syntax: a regex in a standard community list. *)
  let syntax_text =
    let _, diags =
      Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios
        "ip community-list standard COMM_LIST_R2_OUT permit .+\n"
    in
    match List.find_opt Diag.is_error diags with
    | Some d -> (Cosynth.Humanizer.of_diag d).Cosynth.Humanizer.text
    | None -> "(no finding)"
  in
  Printf.printf "[Syntax error]\n  %s\n\n" syntax_text;
  (* Topology: apply each topology fault class and show the verifier line. *)
  Printf.printf "[Topology errors]\n";
  let topo_classes =
    [
      Llmsim.Error_class.Wrong_interface_ip;
      Llmsim.Error_class.Wrong_local_as;
      Llmsim.Error_class.Wrong_router_id;
      Llmsim.Error_class.Missing_neighbor_decl;
      Llmsim.Error_class.Missing_network_decl;
      Llmsim.Error_class.Extra_network_decl;
      Llmsim.Error_class.Extra_neighbor_decl;
    ]
  in
  List.iteri
    (fun i cls ->
      let target =
        List.find_opt
          (fun (f : Llmsim.Fault.t) -> Llmsim.Error_class.equal f.Llmsim.Fault.class_ cls)
          (Llmsim.Fault.opportunities Llmsim.Fault.Cisco_cfg correct)
      in
      match target with
      | None -> ()
      | Some fault ->
          let text = Llmsim.Fault.render Llmsim.Fault.Cisco_cfg correct [ fault ] in
          let ir, _ = Cisco.Parser.parse text in
          (match Topoverify.Verifier.check star.Star.topology ~router:"R1" ir with
          | f :: _ ->
              Printf.printf "  %d. %s\n" (i + 1)
                (Cosynth.Humanizer.of_topology f).Cosynth.Humanizer.text
          | [] -> ()))
    topo_classes;
  (* Semantic: the AND/OR confusion caught by Search Route Policies. *)
  let map = Cosynth.Modularizer.egress_map_name "R2" in
  let text =
    Llmsim.Fault.render Llmsim.Fault.Cisco_cfg correct
      [ Llmsim.Fault.make Llmsim.Error_class.And_or_confusion (Llmsim.Fault.Policy map) ]
  in
  let ir, _ = Cisco.Parser.parse text in
  let semantic =
    List.find_map
      (fun (_, outcome) ->
        match outcome with
        | Batfish.Search_route_policies.Violated v ->
            Some (Cosynth.Humanizer.of_violation v).Cosynth.Humanizer.text
        | _ -> None)
      (Batfish.Search_route_policies.check_all ir hub.Cosynth.Modularizer.specs)
  in
  Printf.printf "\n[Semantic error]\n  %s\n" (Option.value ~default:"(no finding)" semantic)

(* ------------------------------------------------------------------ *)
(* G1: global vs local policy prompting                                *)
(* ------------------------------------------------------------------ *)

let table_g1 () =
  section "G1 — Global vs local policy prompting (Section 4.1)";
  let n = runs 20 in
  let c = Cosynth.Global_vs_local.compare ~runs:n ~routers:7 () in
  print_string
    (Cosynth.Report.table ~title:(Printf.sprintf "%d runs each, 7-router star" n)
       ~header:[ "strategy"; "convergence"; "mean prompts"; "mean strategy switches" ]
       [
         [
           "global spec";
           Printf.sprintf "%.0f%%" (100. *. c.Cosynth.Global_vs_local.global_convergence_rate);
           Printf.sprintf "%.1f" c.Cosynth.Global_vs_local.global_mean_prompts;
           Printf.sprintf "%.1f" c.Cosynth.Global_vs_local.global_mean_switches;
         ];
         [
           "local specs (Lightyear-style)";
           Printf.sprintf "%.0f%%" (100. *. c.Cosynth.Global_vs_local.local_convergence_rate);
           Printf.sprintf "%.1f" c.Cosynth.Global_vs_local.local_mean_prompts;
           "0.0";
         ];
       ])

(* ------------------------------------------------------------------ *)
(* AB1: ablations                                                      *)
(* ------------------------------------------------------------------ *)

let table_ab1a () =
  section
    (Printf.sprintf "AB1a — Ablation: IIP database on/off (7-router no-transit, %d runs)"
       (runs 15));
  let with_iips =
    Cosynth.Metrics.no_transit_summary ~runs:(runs 15) ~routers:7 ~use_iips:true ~pool ()
  in
  let without =
    Cosynth.Metrics.no_transit_summary ~runs:(runs 15) ~routers:7 ~use_iips:false ~pool ()
  in
  let row label (s : Cosynth.Metrics.summary) =
    [
      label;
      Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_auto;
      Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_human;
      Printf.sprintf "%.1fx" s.Cosynth.Metrics.mean_leverage;
      Printf.sprintf "%d/%d" s.Cosynth.Metrics.converged s.Cosynth.Metrics.runs;
    ]
  in
  print_string
    (Cosynth.Report.table ~title:"The IIPs suppress the common syntax mistakes"
       ~header:[ "configuration"; "auto"; "human"; "leverage"; "converged" ]
       [ row "with IIPs (paper setup)" with_iips; row "without IIPs" without ])

let table_ab1b () =
  section
    (Printf.sprintf "AB1b — Ablation: leverage vs star size (%d runs per size)" (runs 10));
  let rows =
    List.map
      (fun routers ->
        let s = Cosynth.Metrics.no_transit_summary ~runs:(runs 10) ~routers ~pool () in
        [
          string_of_int routers;
          Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_auto;
          Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_human;
          Printf.sprintf "%.1fx" s.Cosynth.Metrics.mean_leverage;
        ])
      [ 3; 5; 7; 9; 11 ]
  in
  print_string
    (Cosynth.Report.table ~title:"More routers, more modularizer prompts, higher leverage"
       ~header:[ "routers"; "auto"; "human"; "leverage" ]
       rows)

let table_ab1c () =
  section
    (Printf.sprintf "AB1c — Ablation: translation leverage vs stall threshold (%d runs each)"
       (runs 10));
  let rows =
    List.map
      (fun st ->
        let transcripts =
          Exec.Sweep.run_seeds ~pool
            ~seeds:(Exec.Sweep.seeds ~base:4000 ~n:(runs 10))
            (fun seed ->
              (Cosynth.Driver.run_translation ~seed ~stall_threshold:st ~cisco_text ())
                .Cosynth.Driver.transcript)
        in
        let s = Cosynth.Metrics.summarize transcripts in
        [
          string_of_int st;
          Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_auto;
          Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_human;
          Printf.sprintf "%.1fx" s.Cosynth.Metrics.mean_leverage;
        ])
      [ 1; 2; 3; 4; 6 ]
  in
  print_string
    (Cosynth.Report.table
       ~title:
         "How many automated attempts before escalating to the human (the V->H punt \
          policy)"
       ~header:[ "stall threshold"; "auto"; "human"; "leverage" ]
       rows)

(* ------------------------------------------------------------------ *)
(* E1: simulation vs modular proof as the global check                 *)
(* ------------------------------------------------------------------ *)

let table_e1 () =
  section "E1 — Extension: whole-network simulation vs Lightyear-style modular proof";
  let star = Star.make ~routers:7 in
  let configs =
    List.map
      (fun (t : Cosynth.Modularizer.router_task) ->
        (t.Cosynth.Modularizer.router, t.Cosynth.Modularizer.correct))
      (Cosynth.Modularizer.plan star)
  in
  let hub = List.assoc "R1" configs in
  let verdicts name fault_opt =
    let cfgs =
      match fault_opt with
      | None -> configs
      | Some fault ->
          let text = Llmsim.Fault.render Llmsim.Fault.Cisco_cfg hub [ fault ] in
          let broken, _ = Cisco.Parser.parse text in
          ("R1", broken) :: List.remove_assoc "R1" configs
    in
    let transit = Cosynth.Modularizer.transit_violations star cfgs = [] in
    let proof =
      match Cosynth.Lightyear.prove_no_transit star cfgs with
      | Cosynth.Lightyear.Proved -> "Proved"
      | Cosynth.Lightyear.Refuted r ->
          Printf.sprintf "Refuted (%s->%s)" r.Cosynth.Lightyear.from_spoke
            r.Cosynth.Lightyear.to_spoke
      | Cosynth.Lightyear.Inapplicable _ -> "Inapplicable"
    in
    [ name; (if transit then "no transit" else "TRANSIT"); proof ]
  in
  print_string
    (Cosynth.Report.table
       ~title:
         "The proof composes the hub's ingress and egress policies symbolically (no \
          simulation); it must agree with the simulated transit check"
       ~header:[ "hub configuration"; "simulation"; "modular proof" ]
       [
         verdicts "correct (oracle)" None;
         verdicts "AND/OR confusion on FILTER_COMM_OUT_R2"
           (Some
              (Llmsim.Fault.make Llmsim.Error_class.And_or_confusion
                 (Llmsim.Fault.Policy (Cosynth.Modularizer.egress_map_name "R2"))));
         verdicts "crossed ingress attachments"
           (Some
              (Llmsim.Fault.make Llmsim.Error_class.Crossed_policy_attachment
                 Llmsim.Fault.Whole_config));
         verdicts "non-additive community on TAG_R2"
           (Some
              (Llmsim.Fault.make Llmsim.Error_class.Community_not_additive
                 (Llmsim.Fault.Policy_entry (Cosynth.Modularizer.ingress_map_name "R2", 10))));
       ])

(* ------------------------------------------------------------------ *)
(* E2: incremental policy addition                                     *)
(* ------------------------------------------------------------------ *)

let table_e2 () =
  section
    "E2 — Extension: incremental policy addition (the paper's closing question)";
  let runs = runs 25 in
  let results =
    Exec.Sweep.run_seeds ~pool
      ~seeds:(List.init runs (fun i -> i * 31))
      (fun seed -> Cosynth.Driver.run_incremental ~seed ~routers:7 ())
  in
  let count f = List.length (List.filter f results) in
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0. results /. float_of_int runs
  in
  print_string
    (Cosynth.Report.kv
       ~title:
         (Printf.sprintf
            "Prepend the AS path on exports to R2 without breaking the verified \
             no-transit policy (%d seeded runs)"
            runs)
       [
         ("converged, all specs hold", Printf.sprintf "%d/%d" (count (fun r -> r.Cosynth.Driver.specs_hold)) runs);
         ("no-transit preserved network-wide", Printf.sprintf "%d/%d" (count (fun r -> r.Cosynth.Driver.global_ok)) runs);
         ( "runs where the edit interfered and the verifier caught it",
           Printf.sprintf "%d/%d" (count (fun r -> r.Cosynth.Driver.interference_caught)) runs );
         ( "mean prompts (auto / human)",
           Printf.sprintf "%.1f / %.1f"
             (mean (fun r -> float_of_int r.Cosynth.Driver.inc_transcript.Cosynth.Driver.auto_prompts))
             (mean (fun r -> float_of_int r.Cosynth.Driver.inc_transcript.Cosynth.Driver.human_prompts)) );
       ])

(* ------------------------------------------------------------------ *)
(* E3: leverage vs model quality                                       *)
(* ------------------------------------------------------------------ *)

let table_e3 () =
  section "E3 — Extension: leverage vs simulated model quality";
  Printf.printf
    "The paper predicts: \"If a future LLM, say GPT-6, produces near-perfect\n\
     configurations, leverage will decrease as there is less need for automatic\n\
     correction.\" Quality q scales fault injection by (1-q) and correction\n\
     reliability toward 1.\n\n";
  let rows =
    List.map
      (fun q ->
        let transcripts =
          Exec.Sweep.run_seeds ~pool
            ~seeds:(Exec.Sweep.seeds ~base:6000 ~n:(runs 15))
            (fun seed ->
              (Cosynth.Driver.run_translation ~seed ~quality:q ~cisco_text ())
                .Cosynth.Driver.transcript)
        in
        let s = Cosynth.Metrics.summarize transcripts in
        [
          Printf.sprintf "%.2f" q;
          Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_auto;
          Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_human;
          Printf.sprintf "%.1fx" s.Cosynth.Metrics.mean_leverage;
          Printf.sprintf "%d/%d" s.Cosynth.Metrics.converged s.Cosynth.Metrics.runs;
        ])
      [ 0.0; 0.25; 0.5; 0.75; 0.95 ]
  in
  print_string
    (Cosynth.Report.table
       ~title:(Printf.sprintf "Translation loop, %d runs per quality level" (runs 15))
       ~header:[ "model quality"; "auto"; "human"; "leverage"; "converged" ]
       rows)

(* ------------------------------------------------------------------ *)
(* C1: chaos sweep — the VPP loops under injected verifier faults      *)
(* ------------------------------------------------------------------ *)

(* Every schedule shares one chaos seed; the driver mixes the run seed in
   as the salt, so a seed sweep explores distinct fault timelines under
   each configuration. The all-zero schedule pins the pay-for-what-you-use
   contract: arming it is a no-op. *)
let chaos_schedules =
  [
    ("no faults", Resilience.Chaos.make ~seed:99 ());
    ("crash 0.15", Resilience.Chaos.make ~crash_rate:0.15 ~seed:99 ());
    ( "timeout 0.20 + flake 0.10",
      Resilience.Chaos.make ~timeout_rate:0.2 ~flake_rate:0.1 ~seed:99 () );
    ( "all faults 0.08",
      Resilience.Chaos.make ~crash_rate:0.08 ~timeout_rate:0.08
        ~flake_rate:0.08 ~truncate_rate:0.08 ~seed:99 () );
  ]

let table_c1 () =
  section "C1 — Chaos sweep: the VPP loops under injected verifier faults";
  let n = if chaos_only then 20 else if smoke then 5 else 20 in
  let seeds = Exec.Sweep.seeds ~base:8000 ~n in
  let trans_budget = 200 and synth_budget = 400 in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  (* The two invariants under ANY fault schedule: the loop never raises,
     and the merged transcript never exceeds its prompt budget. *)
  let guarded label budget f =
    match f () with
    | (t : Cosynth.Driver.transcript) ->
        let spent = t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts in
        if spent > budget then
          violation "%s spent %d prompts (budget %d)" label spent budget;
        Some t
    | exception e -> violation "%s raised %s" label (Printexc.to_string e); None
  in
  let degraded_events ts =
    List.fold_left
      (fun acc (t : Cosynth.Driver.transcript) ->
        acc
        + List.length
            (List.filter
               (fun (e : Cosynth.Driver.event) ->
                 e.Cosynth.Driver.origin = Cosynth.Driver.Degraded)
               t.Cosynth.Driver.events))
      0 ts
  in
  (* Journal-aware [List.filter_map f seeds]: under --journal each C1 cell
     checkpoints its per-seed outcome to its own file ([Null] = the
     budget/raise gate dropped the run) and --resume replays it. *)
  let c1_sweep name f =
    match journal_dir with
    | None -> List.filter_map f seeds
    | Some dir ->
        let j =
          open_journal dir ("c1-" ^ name)
            ~encode:(function
              | Some t -> Cosynth.Driver.transcript_to_json t
              | None -> Netcore.Json.Null)
            ~decode:(function
              | Netcore.Json.Null -> Some None
              | json -> (
                  try Some (Some (Cosynth.Driver.transcript_of_json json))
                  with _ -> None))
        in
        let out = Exec.Sweep.run_seeds ~journal:j ~seeds f in
        Exec.Sweep.journal_close j;
        List.filter_map Fun.id out
  in
  Exec.Memo.reset ();
  let (rows, crash_rows, identical), perf =
    Cosynth.Metrics.measure (fun () ->
        let rows =
          List.map
            (fun (name, chaos) ->
              let resilience = Resilience.Runtime.config ~chaos () in
              let ts =
                c1_sweep
                  (Printf.sprintf "translation-%s" name)
                  (fun seed ->
                    guarded
                      (Printf.sprintf "translation[%s seed %d]" name seed)
                      trans_budget
                      (fun () ->
                        (Cosynth.Driver.run_translation ~seed ~resilience
                           ~cisco_text ())
                          .Cosynth.Driver.transcript))
              in
              let ss =
                c1_sweep
                  (Printf.sprintf "no-transit-%s" name)
                  (fun seed ->
                    guarded
                      (Printf.sprintf "no-transit[%s seed %d]" name seed)
                      synth_budget
                      (fun () ->
                        (Cosynth.Driver.run_no_transit ~seed ~resilience
                           ~routers:7 ())
                          .Cosynth.Driver.transcript))
              in
              let st = Cosynth.Metrics.summarize ts in
              let sn = Cosynth.Metrics.summarize ss in
              [
                name;
                Printf.sprintf "%d/%d" (st.Cosynth.Metrics.converged + sn.Cosynth.Metrics.converged)
                  (st.Cosynth.Metrics.runs + sn.Cosynth.Metrics.runs);
                Printf.sprintf "%.1fx" st.Cosynth.Metrics.mean_leverage;
                Printf.sprintf "%.1fx" sn.Cosynth.Metrics.mean_leverage;
                string_of_int (degraded_events ts + degraded_events ss);
              ])
            chaos_schedules
        in
        (* Leverage vs crash rate (no-transit): outages degrade stages to
           the human path, so leverage falls as the crash rate rises. *)
        let crash_rows =
          List.map
            (fun rate ->
              let chaos = Resilience.Chaos.make ~crash_rate:rate ~seed:99 () in
              let resilience = Resilience.Runtime.config ~chaos () in
              let ss =
                c1_sweep
                  (Printf.sprintf "crash-%.2f" rate)
                  (fun seed ->
                    guarded
                      (Printf.sprintf "no-transit[crash %.2f seed %d]" rate seed)
                      synth_budget
                      (fun () ->
                        (Cosynth.Driver.run_no_transit ~seed ~resilience
                           ~routers:7 ())
                          .Cosynth.Driver.transcript))
              in
              let s = Cosynth.Metrics.summarize ss in
              [
                Printf.sprintf "%.2f" rate;
                Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_auto;
                Printf.sprintf "%.1f" s.Cosynth.Metrics.mean_human;
                Printf.sprintf "%.1fx" s.Cosynth.Metrics.mean_leverage;
                Printf.sprintf "%d/%d" s.Cosynth.Metrics.converged s.Cosynth.Metrics.runs;
                string_of_int (degraded_events ss);
              ])
            [ 0.0; 0.05; 0.15; 0.30 ]
        in
        (* Pay-for-what-you-use: with every rate 0 the wrapped loops must
           produce byte-identical transcripts to the unwrapped ones. *)
        let zero =
          Resilience.Runtime.config ~chaos:(List.assoc "no faults" chaos_schedules) ()
        in
        let md t = Cosynth.Driver.transcript_to_markdown ~title:"run" t in
        let identical =
          List.for_all
            (fun seed ->
              md (Cosynth.Driver.run_translation ~seed ~resilience:zero ~cisco_text ())
                   .Cosynth.Driver.transcript
              = md (Cosynth.Driver.run_translation ~seed ~cisco_text ())
                  .Cosynth.Driver.transcript
              && md (Cosynth.Driver.run_no_transit ~seed ~resilience:zero ~routers:7 ())
                      .Cosynth.Driver.transcript
                 = md (Cosynth.Driver.run_no_transit ~seed ~routers:7 ())
                     .Cosynth.Driver.transcript)
            seeds
        in
        (rows, crash_rows, identical))
  in
  print_string
    (Cosynth.Report.table
       ~title:
         (Printf.sprintf
            "%d seeds per schedule, translation + 7-router no-transit" n)
       ~header:
         [ "fault schedule"; "converged"; "trans leverage"; "synth leverage"; "degraded" ]
       rows);
  print_newline ();
  print_string
    (Cosynth.Report.table
       ~title:"No-transit leverage vs crash rate (outages -> human checks -> lower leverage)"
       ~header:[ "crash rate"; "auto"; "human"; "leverage"; "converged"; "degraded" ]
       crash_rows);
  print_newline ();
  let totals = Cosynth.Metrics.verifier_totals perf in
  print_string
    (Cosynth.Report.table ~title:"Per-verifier resilience counters (whole sweep)"
       ~header:Cosynth.Metrics.verifier_header
       (Cosynth.Metrics.verifier_rows perf)
       ~footer:
         [
           "total";
           string_of_int totals.Resilience.Stats.attempts;
           string_of_int totals.Resilience.Stats.retries;
           string_of_int totals.Resilience.Stats.failures;
           string_of_int totals.Resilience.Stats.breaker_trips;
           string_of_int totals.Resilience.Stats.degraded;
           string_of_int totals.Resilience.Stats.max_attempts;
         ]);
  Printf.printf "\n  rate-0 transcripts byte-identical to the unwrapped loops: %b\n"
    identical;
  if not identical then violation "rate-0 chaos transcripts differ from the unwrapped loops";
  Printf.printf "  invariant violations (uncaught exceptions / budget overruns): %d\n"
    (List.length !violations);
  List.iter (fun v -> Printf.printf "    VIOLATION: %s\n" v) (List.rev !violations);
  if !violations <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* C2: supervised sweeps — worker loss, checkpoint/resume, policies    *)
(* ------------------------------------------------------------------ *)

(* The bench-side copy of the CLI's journal codec: the summary-relevant
   projection of a supervised outcome, with placeholder [Degraded] events
   so a replayed transcript summarizes identically. *)
let c2_encode (o : Cosynth.Driver.transcript Exec.Supervisor.outcome) =
  let degraded_rounds (t : Cosynth.Driver.transcript) =
    List.length
      (List.filter
         (fun (e : Cosynth.Driver.event) ->
           e.Cosynth.Driver.origin = Cosynth.Driver.Degraded)
         t.Cosynth.Driver.events)
  in
  match o with
  | Exec.Supervisor.Completed t ->
      Netcore.Json.Obj
        [
          ("ok", Netcore.Json.Bool true);
          ("auto", Netcore.Json.Int t.Cosynth.Driver.auto_prompts);
          ("human", Netcore.Json.Int t.Cosynth.Driver.human_prompts);
          ("converged", Netcore.Json.Bool t.Cosynth.Driver.converged);
          ("rounds", Netcore.Json.Int t.Cosynth.Driver.rounds);
          ("degraded", Netcore.Json.Int (degraded_rounds t));
        ]
  | Exec.Supervisor.Abandoned { attempts; reason } ->
      Netcore.Json.Obj
        [
          ("ok", Netcore.Json.Bool false);
          ("attempts", Netcore.Json.Int attempts);
          ("reason", Netcore.Json.String reason);
        ]

let c2_decode json =
  let mem f name = Option.bind (Netcore.Json.member name json) f in
  match mem Netcore.Json.to_bool "ok" with
  | Some true -> (
      match
        ( mem Netcore.Json.to_int "auto",
          mem Netcore.Json.to_int "human",
          mem Netcore.Json.to_bool "converged",
          mem Netcore.Json.to_int "rounds",
          mem Netcore.Json.to_int "degraded" )
      with
      | Some auto, Some human, Some converged, Some rounds, Some degraded ->
          Some
            (Exec.Supervisor.Completed
               {
                 Cosynth.Driver.events =
                   List.init degraded (fun _ ->
                       {
                         Cosynth.Driver.origin = Cosynth.Driver.Degraded;
                         prompt = "(replayed from journal)";
                         note = "degraded";
                       });
                 human_prompts = human;
                 auto_prompts = auto;
                 converged;
                 rounds;
                 certificate = None;
               })
      | _ -> None)
  | Some false -> (
      match (mem Netcore.Json.to_int "attempts", mem Netcore.Json.to_str "reason") with
      | Some attempts, Some reason ->
          Some (Exec.Supervisor.Abandoned { attempts; reason })
      | _ -> None)
  | None -> None

let table_c2 () =
  section
    "C2 — Supervised sweeps: worker-domain loss, checkpoint/resume, per-verifier \
     policies";
  let n = if chaos_only then 12 else if smoke then 4 else 12 in
  let seeds = Exec.Sweep.seeds ~base:8800 ~n in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let run_seed resilience seed =
    (Cosynth.Driver.run_no_transit ~seed ~resilience ~routers:5 ())
      .Cosynth.Driver.transcript
  in
  let summary_line ts =
    Format.asprintf "%a" Cosynth.Metrics.pp_summary (Cosynth.Metrics.summarize ts)
  in
  let md_concat ts =
    String.concat "\n"
      (List.map (Cosynth.Driver.transcript_to_markdown ~title:"run") ts)
  in
  (* The pre-supervisor reference: today's plain pooled sweep. The rate-0
     supervised sweep below must reproduce it byte-for-byte. *)
  let zero = Resilience.Runtime.default_config in
  let baseline =
    Exec.Sweep.run_seeds ~pool ~seeds (fun seed -> run_seed zero seed)
  in
  let baseline_md = md_concat baseline in
  let baseline_table = summary_line baseline in
  (* Kill-rate sweep: every task runs under the supervisor's boundary on
     the shared pool; the loss plan is keyed on the seed itself. *)
  let rows =
    List.map
      (fun rate ->
        let chaos = Resilience.Chaos.make ~worker_loss_rate:rate ~seed:131 () in
        let resilience = Resilience.Runtime.config ~chaos () in
        (* Half the losses strike mid-task: the seed runs and is thrown
           away, exercising the at-least-once path. The loss schedule —
           and therefore every row — is identical to an all-at-dispatch
           plan; only the wasted work differs. *)
        let plan = Resilience.Chaos.worker_plan ~in_flight:0.5 chaos ~salt:0 in
        let p0 = Exec.Pool.stats pool in
        let c0 = Exec.Supervisor.stats () in
        let outcomes =
          Exec.Supervisor.map ~pool ~plan
            ~index_of:(fun s -> s)
            (run_seed resilience) seeds
        in
        let c = Exec.Supervisor.diff c0 (Exec.Supervisor.stats ()) in
        let restarts =
          (Exec.Pool.stats pool).Exec.Pool.restarts - p0.Exec.Pool.restarts
        in
        let ts = List.filter_map Exec.Supervisor.completed outcomes in
        let abandoned =
          List.length (List.filter Exec.Supervisor.abandoned outcomes)
        in
        let table_equal = summary_line ts = baseline_table in
        if rate = 0. && md_concat ts <> baseline_md then
          violation
            "rate-0 supervised sweep is not byte-identical to the plain pooled sweep";
        (* The acceptance bar: modest loss rates must cost retries, never
           results. *)
        if rate <= 0.2 && abandoned > 0 then
          violation "worker-loss rate %.2f abandoned %d seed(s)" rate abandoned;
        if rate <= 0.2 && not table_equal then
          violation "worker-loss rate %.2f drifted from the rate-0 table" rate;
        [
          Printf.sprintf "%.2f" rate;
          Printf.sprintf "%d/%d" (List.length ts) n;
          string_of_int abandoned;
          string_of_int c.Exec.Supervisor.losses;
          string_of_int c.Exec.Supervisor.requeues;
          string_of_int restarts;
          (if table_equal then "yes" else "DRIFT");
        ])
      [ 0.0; 0.05; 0.1; 0.2; 0.5 ]
  in
  print_string
    (Cosynth.Report.table
       ~title:
         (Printf.sprintf
            "%d-seed 5-router no-transit sweeps under worker-domain loss (budget %d \
             attempts/task)"
            n Exec.Supervisor.default_policy.Exec.Supervisor.max_attempts)
       ~header:
         [
           "loss rate"; "completed"; "abandoned"; "losses"; "requeues"; "restarts";
           "table = rate-0";
         ]
       rows);
  (* Checkpoint/resume: journal the first half, "crash", resume over the
     full seed list, and demand the identical table from the mix of
     journaled and fresh runs. *)
  let chaos = Resilience.Chaos.make ~worker_loss_rate:0.1 ~seed:131 () in
  let resilience = Resilience.Runtime.config ~chaos () in
  let plan = Resilience.Chaos.worker_plan chaos ~salt:0 in
  let sup_seed seed =
    Exec.Supervisor.run_one ~plan ~index:seed (fun () -> run_seed resilience seed)
  in
  let direct = List.map sup_seed seeds in
  let journal_path = Filename.temp_file "cosynth_c2_" ".jsonl" in
  let half = List.filteri (fun i _ -> i < n / 2) seeds in
  let j1 =
    Exec.Sweep.journal ~path:journal_path ~encode:c2_encode ~decode:c2_decode ()
  in
  ignore (Exec.Sweep.run_seeds ~journal:j1 ~seeds:half sup_seed);
  Exec.Sweep.journal_close j1;
  let j2 =
    Exec.Sweep.journal ~resume:true ~path:journal_path ~encode:c2_encode
      ~decode:c2_decode ()
  in
  let replayed = List.length (Exec.Sweep.journaled_seeds j2) in
  let resumed = Exec.Sweep.run_seeds ~journal:j2 ~seeds sup_seed in
  Exec.Sweep.journal_close j2;
  Sys.remove journal_path;
  let resumed_table =
    summary_line (List.filter_map Exec.Supervisor.completed resumed)
  in
  let direct_table =
    summary_line (List.filter_map Exec.Supervisor.completed direct)
  in
  let resume_ok = resumed_table = direct_table in
  Printf.printf
    "\n  resume: %d/%d seeds replayed from the journal; table identical to the \
     uninterrupted sweep: %b\n"
    replayed n resume_ok;
  if not resume_ok then
    violation "resumed sweep drifted from the uninterrupted sweep";
  (* Per-verifier policies: under one flake rate the cheap parse check may
     retry deeper than the expensive BGP sim ever can. *)
  let flaky =
    Resilience.Runtime.config
      ~chaos:(Resilience.Chaos.make ~flake_rate:0.3 ~seed:7 ()) ()
  in
  let v0 = Resilience.Stats.snapshot () in
  List.iter
    (fun seed -> ignore (run_seed flaky seed))
    (List.filteri (fun i _ -> i < 4) seeds);
  let d = Resilience.Stats.diff v0 (Resilience.Stats.snapshot ()) in
  let max_att k =
    (List.assoc k d).Resilience.Stats.max_attempts
  in
  let parse_max = max_att Resilience.Verifier.Parse_check in
  let bgp_max = max_att Resilience.Verifier.Bgp_sim in
  Printf.printf
    "  per-verifier policies under flake 0.30: parse-check max attempts %d, \
     bgp-sim max attempts %d\n"
    parse_max bgp_max;
  if bgp_max >= parse_max then
    violation
      "per-kind policies not in effect: bgp-sim reached %d attempts vs \
       parse-check's %d"
      bgp_max parse_max;
  Printf.printf "  invariant violations: %d\n" (List.length !violations);
  List.iter (fun v -> Printf.printf "    VIOLATION: %s\n" v) (List.rev !violations);
  if !violations <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* S1: service mode — warm daemon vs cold per-job startup              *)
(* ------------------------------------------------------------------ *)

let table_s1 () =
  section "S1 — Service mode: warm `serve` daemon vs cold per-job startup";
  let module J = Json in
  let n = if smoke then 4 else 16 in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let seeds = Exec.Sweep.seeds ~base:12000 ~n in
  let fingerprint (t : Cosynth.Driver.transcript) =
    (t.Cosynth.Driver.auto_prompts, t.Cosynth.Driver.human_prompts,
     t.Cosynth.Driver.converged, t.Cosynth.Driver.rounds)
  in
  (* Cold: what per-job CLI invocations cost — every request pays for its
     own worker pool and starts with an empty parse memo. *)
  let cold, cold_perf =
    Cosynth.Metrics.measure (fun () ->
        List.map
          (fun seed ->
            Exec.Memo.reset ();
            let p = Exec.Pool.create ~domains:2 () in
            let r = Cosynth.Driver.run_no_transit ~seed ~pool:p ~routers:5 () in
            Exec.Pool.shutdown p;
            fingerprint r.Cosynth.Driver.transcript)
          seeds)
  in
  (* Warm: the same jobs through an in-process Exec.Serve daemon on a real
     Unix socket — one shared pool, one persistent memo, one connection. *)
  Exec.Memo.reset ();
  let dir = Filename.temp_file "cosynth_s1_" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let socket_path = Filename.concat dir "s1.sock" in
  let shared = Exec.Pool.create ~domains:2 () in
  let handle ~client:_ req =
    match Option.bind (J.member "job" req) J.to_str with
    | Some "synth" ->
        let seed =
          Option.value ~default:0 (Option.bind (J.member "seed" req) J.to_int)
        in
        let r = Cosynth.Driver.run_no_transit ~seed ~pool:shared ~routers:5 () in
        let t = r.Cosynth.Driver.transcript in
        Exec.Serve.Reply
          (J.Obj
             [
               ("ok", J.Bool true);
               ("auto", J.Int t.Cosynth.Driver.auto_prompts);
               ("human", J.Int t.Cosynth.Driver.human_prompts);
               ("converged", J.Bool t.Cosynth.Driver.converged);
               ("rounds", J.Int t.Cosynth.Driver.rounds);
             ])
    | Some "stop" -> Exec.Serve.Final (J.Obj [ ("ok", J.Bool true) ])
    | _ -> Exec.Serve.Reply (J.Obj [ ("ok", J.Bool false) ])
  in
  let server =
    Thread.create (fun () -> Exec.Serve.serve ~socket_path ~handle ()) ()
  in
  let warm, warm_perf =
    Cosynth.Metrics.measure (fun () ->
        Exec.Serve.with_connection ~socket_path (fun fd ->
            List.map
              (fun seed ->
                Exec.Serve.request fd
                  (J.Obj [ ("job", J.String "synth"); ("seed", J.Int seed) ]))
              seeds))
  in
  let memo_after = Exec.Memo.stats () in
  Exec.Serve.with_connection ~socket_path (fun fd ->
      ignore (Exec.Serve.request fd (J.Obj [ ("job", J.String "stop") ])));
  Thread.join server;
  Exec.Pool.shutdown shared;
  (try Sys.rmdir dir with _ -> ());
  (* Gate 1: the daemon returns the exact transcripts the cold runs
     computed — service mode is a perf story, never a semantics story. *)
  List.iteri
    (fun i reply ->
      let seed = List.nth seeds i in
      let field f conv = Option.bind (J.member f reply) conv in
      let got =
        match
          ( field "auto" J.to_int, field "human" J.to_int,
            field "converged" J.to_bool, field "rounds" J.to_int )
        with
        | Some a, Some h, Some c, Some r -> Some (a, h, c, r)
        | _ -> None
      in
      if field "ok" J.to_bool <> Some true then
        violation "seed %d: daemon reply not ok" seed
      else if got <> Some (List.nth cold i) then
        violation "seed %d: warm result differs from the cold run" seed)
    warm;
  (* Gate 2: the daemon's state really is warm — the persistent memo must
     serve hits across requests (each cold job starts from 0%). *)
  if memo_after.Exec.Memo.hits = 0 then
    violation "warm daemon served %d jobs without a single memo hit" n;
  let throughput (p : Cosynth.Metrics.perf) =
    float_of_int n /. Float.max p.Cosynth.Metrics.wall_s 1e-9
  in
  print_string
    (Cosynth.Report.table
       ~title:(Printf.sprintf "%d 5-router no-transit jobs per mode" n)
       ~header:[ "mode"; "wall"; "jobs/s"; "memo hit rate" ]
       [
         [
           "cold (pool + memo per job)";
           Printf.sprintf "%.2fs" cold_perf.Cosynth.Metrics.wall_s;
           Printf.sprintf "%.1f" (throughput cold_perf);
           "0% at job start";
         ];
         [
           "warm (serve daemon)";
           Printf.sprintf "%.2fs" warm_perf.Cosynth.Metrics.wall_s;
           Printf.sprintf "%.1f" (throughput warm_perf);
           Printf.sprintf "%.0f%%" (100. *. Exec.Memo.hit_rate memo_after);
         ];
       ]);
  Printf.printf "\n  warm/cold speedup: %.2fx\n"
    (cold_perf.Cosynth.Metrics.wall_s
    /. Float.max warm_perf.Cosynth.Metrics.wall_s 1e-9);
  (* Gate 3: warm must never be meaningfully slower than cold. Enforced
     only at full budget — at smoke budget the walls are tens of
     milliseconds and the check alias runs the bench rules in parallel, so
     scheduler noise dominates; gates 1–2 are the deterministic smoke
     invariants. *)
  if
    (not smoke)
    && warm_perf.Cosynth.Metrics.wall_s > 1.25 *. cold_perf.Cosynth.Metrics.wall_s
  then
    violation "warm daemon slower than cold startup (%.2fs vs %.2fs)"
      warm_perf.Cosynth.Metrics.wall_s cold_perf.Cosynth.Metrics.wall_s;
  match List.rev !violations with
  | [] -> Printf.printf "  S1: all invariants hold\n"
  | vs ->
      Printf.printf "\n  S1 GATE FAILED: %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) vs;
      exit 1

(* ------------------------------------------------------------------ *)
(* S2: service hardening — admission, deadlines, drain under overload  *)
(* ------------------------------------------------------------------ *)

(* The gate runs the exact Cosynth.Service handler the CLI ships, as an
   in-process daemon on a real Unix socket, and drives it through one
   lifetime: unloaded byte-identity first (hardening must cost nothing on
   the happy path), then deadline expiry, the per-client cap, a
   2x-capacity burst, and finally a drain fired mid-burst. *)
let table_s2 () =
  section "S2 — Service hardening: admission, deadlines and drain under overload";
  let module J = Json in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let dir = Filename.temp_file "cosynth_s2_" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let socket_path = Filename.concat dir "s2.sock" in
  let cap = if smoke then 2 else 4 in
  let queue = 2 in
  let cfg =
    {
      Cosynth.Service.default_config with
      Cosynth.Service.domains = Some 1;
      debug_jobs = true;
      drain_grace_ms = 1_000;
      admission =
        {
          Resilience.Admission.max_in_flight = cap;
          max_queue = queue;
          max_per_client = 2;
          max_deadline_ms = 10_000;
          retry_after_ms = 20;
        };
    }
  in
  let summary = ref None in
  let server =
    Thread.create
      (fun () -> summary := Some (Cosynth.Service.serve ~socket_path cfg))
      ()
  in
  let with_conn f =
    Exec.Serve.with_connection ~total_budget_ms:5_000 ~socket_path f
  in
  let sleep_req ?(ms = 150) ?(deadline = 5_000) client =
    J.Obj
      [
        ("job", J.String "sleep");
        ("ms", J.Int ms);
        ("deadline_ms", J.Int deadline);
        ("client", J.String client);
      ]
  in
  (* Gate 1: unloaded byte-identity. The very first connection (client
     counter 0) sends the pre-hardening job set; every reply must be
     byte-identical to the frame the unhardened daemon would have written —
     computed here from direct driver/memo calls with the same budget
     clamping. Admission and deadlines may only add frames on the overload
     and expiry paths, never fields on this one. *)
  let synth_seed = 12345 in
  let expected_unloaded =
    let r =
      Cosynth.Driver.run_no_transit ~seed:synth_seed ~pool
        ~resilience:
          (Resilience.Runtime.config ~round_budget:64 ~stage_budget:32 ())
        ~routers:5 ()
    in
    let t = r.Cosynth.Driver.transcript in
    let _, diags = Exec.Memo.check Batfish.Parse_check.Cisco_ios cisco_text in
    [
      J.Obj [ ("ok", J.Bool true); ("pong", J.Bool true); ("client", J.Int 0) ];
      J.Obj
        [
          ("ok", J.Bool true);
          ("errors", J.Int (List.length (List.filter Diag.is_error diags)));
          ("diags", J.List (List.map (fun d -> J.String (Diag.to_string d)) diags));
        ];
      J.Obj
        [
          ("ok", J.Bool true);
          ("auto", J.Int t.Cosynth.Driver.auto_prompts);
          ("human", J.Int t.Cosynth.Driver.human_prompts);
          ("rounds", J.Int t.Cosynth.Driver.rounds);
          ("converged", J.Bool t.Cosynth.Driver.converged);
          ("global_ok", J.Bool r.Cosynth.Driver.global_ok);
        ];
    ]
  in
  let unloaded_reqs =
    [
      J.Obj [ ("job", J.String "ping") ];
      J.Obj [ ("job", J.String "parse"); ("text", J.String cisco_text) ];
      J.Obj
        [
          ("job", J.String "synth");
          ("seed", J.Int synth_seed);
          ("routers", J.Int 5);
        ];
    ]
  in
  let unloaded =
    with_conn (fun fd -> List.map (Exec.Serve.request fd) unloaded_reqs)
  in
  List.iteri
    (fun i got ->
      let want = List.nth expected_unloaded i in
      if J.to_string got <> J.to_string want then
        violation "unloaded reply %d not byte-identical: got %s, want %s" i
          (J.to_string got) (J.to_string want))
    (if List.length unloaded = List.length expected_unloaded then unloaded
     else begin
       violation "unloaded: %d replies for %d requests" (List.length unloaded)
         (List.length expected_unloaded);
       []
     end);
  (* Gate 2: deadline expiry. A sleep longer than its deadline must answer
     a structured timeout frame near the deadline — not after the full
     sleep, and never a hung connection — and the connection stays usable. *)
  let deadline_wall, timeout_ok, conn_alive =
    with_conn (fun fd ->
        let t0 = Unix.gettimeofday () in
        let r =
          Exec.Serve.request fd (sleep_req ~ms:1_500 ~deadline:100 "deadline")
        in
        let wall = Unix.gettimeofday () -. t0 in
        let timeout_ok =
          Option.bind (J.member "timeout" r) J.to_bool = Some true
          && Option.bind (J.member "ok" r) J.to_bool = Some false
          && Option.bind (J.member "deadline_ms" r) J.to_int = Some 100
        in
        let p = Exec.Serve.request fd (J.Obj [ ("job", J.String "ping") ]) in
        (wall, timeout_ok, Option.bind (J.member "ok" p) J.to_bool = Some true))
  in
  if not timeout_ok then violation "deadline expiry did not answer a timeout frame";
  if deadline_wall > 1.0 then
    violation "deadline-expired request took %.2fs (deadline 0.1s)" deadline_wall;
  if not conn_alive then violation "connection dead after a deadline expiry";
  (* Gate 3: the per-client cap. One identity flooding the daemon is shed
     with per-client frames even though global capacity remains. *)
  let greedy_outcomes = Array.make (cap + 2) `Pending in
  let greedy =
    List.init (cap + 2) (fun i ->
        Thread.create
          (fun () ->
            greedy_outcomes.(i) <-
              (try
                 with_conn (fun fd ->
                     match Exec.Serve.request fd (sleep_req ~ms:200 "greedy") with
                     | r
                       when Option.bind (J.member "ok" r) J.to_bool = Some true
                       ->
                         `Ok
                     | _ -> `Other
                     | exception Exec.Serve.Server_overloaded _ -> `Shed)
               with e -> ignore e; `Other))
          ())
  in
  List.iter Thread.join greedy;
  let count tag arr =
    Array.fold_left (fun acc o -> if o = tag then acc + 1 else acc) 0 arr
  in
  if count `Shed greedy_outcomes = 0 then
    violation "per-client cap never shed (%d concurrent jobs, cap 2)" (cap + 2);
  if count `Ok greedy_outcomes = 0 then
    violation "per-client flood: no job admitted at all";
  (* Gate 4: a 2x-capacity burst of distinct clients. Shed requests carry
     the structured retry frame and — because the frame is flow control,
     not failure — succeed on retry; nothing hangs past its deadline. *)
  let burst_n = 2 * (cap + queue) in
  let sheds = ref 0 in
  let sheds_m = Mutex.create () in
  let burst_outcomes = Array.make burst_n `Pending in
  let burst_walls = Array.make burst_n 0. in
  let burst_thread i =
    let t0 = Unix.gettimeofday () in
    let outcome =
      try
        with_conn (fun fd ->
            let req =
              sleep_req ~ms:(if smoke then 120 else 200)
                (Printf.sprintf "burst-%d" i)
            in
            let rec go tries =
              match Exec.Serve.request fd req with
              | r when Option.bind (J.member "ok" r) J.to_bool = Some true ->
                  `Ok
              | r
                when Option.bind (J.member "draining" r) J.to_bool = Some true
                ->
                  `Draining
              | _ -> `Other
              | exception Exec.Serve.Server_overloaded { retry_after_ms } ->
                  Mutex.lock sheds_m;
                  incr sheds;
                  Mutex.unlock sheds_m;
                  if tries >= 100 then `Shed_exhausted
                  else begin
                    Thread.delay (float_of_int (max 1 retry_after_ms) /. 1000.);
                    go (tries + 1)
                  end
            in
            go 0)
      with e -> ignore e; `Other
    in
    burst_outcomes.(i) <- outcome;
    burst_walls.(i) <- Unix.gettimeofday () -. t0
  in
  let burst = List.init burst_n (fun i -> Thread.create burst_thread i) in
  List.iter Thread.join burst;
  if !sheds = 0 then
    violation "2x-capacity burst (%d jobs, capacity %d+%d) never shed" burst_n
      cap queue;
  if count `Ok burst_outcomes <> burst_n then
    violation "burst: %d/%d requests did not complete ok on retry"
      (burst_n - count `Ok burst_outcomes)
      burst_n;
  Array.iteri
    (fun i w ->
      if w > 15. then violation "burst request %d took %.1fs (hang?)" i w)
    burst_walls;
  (* Gate 5: drain mid-burst. Fire a second burst, then drain while it is
     in flight: every admitted job still answers, requests arriving after
     the drain get the structured draining reject (including on
     connections that were already open), the server thread returns with
     drained=true, and the socket is unlinked. Zero admitted jobs lost =
     every thread ends in a terminal frame, none hangs or errors. *)
  let drain_n = cap + queue in
  let drain_outcomes = Array.make drain_n `Pending in
  let drain_burst =
    List.init drain_n (fun i ->
        Thread.create
          (fun () ->
            drain_outcomes.(i) <-
              (try
                 with_conn (fun fd ->
                     let req =
                       sleep_req ~ms:400 (Printf.sprintf "drain-%d" i)
                     in
                     match Exec.Serve.request fd req with
                     | r
                       when Option.bind (J.member "ok" r) J.to_bool = Some true
                       ->
                         `Ok
                     | r
                       when Option.bind (J.member "draining" r) J.to_bool
                            = Some true ->
                         `Draining
                     | r
                       when Option.bind (J.member "timeout" r) J.to_bool
                            = Some true ->
                         `Timeout
                     | _ -> `Other
                     | exception Exec.Serve.Server_overloaded _ -> `Shed)
               with e -> ignore e; `Error))
          ())
  in
  let late_reject =
    with_conn (fun fd ->
        (* Opened before the drain lands; its post-drain request must get
           the structured reject, not a closed socket. *)
        Thread.delay 0.1;
        let d =
          with_conn (fun dfd ->
              Exec.Serve.request dfd (J.Obj [ ("job", J.String "drain") ]))
        in
        if Option.bind (J.member "draining" d) J.to_bool <> Some true then
          violation "drain job did not ack with draining:true";
        match Exec.Serve.request fd (J.Obj [ ("job", J.String "ping") ]) with
        | r -> Option.bind (J.member "draining" r) J.to_bool = Some true
        | exception _ -> false)
  in
  if not late_reject then
    violation "post-drain request on a live connection got no draining reject";
  List.iter Thread.join drain_burst;
  let terminal = function
    | `Ok | `Draining | `Timeout | `Shed -> true
    | _ -> false
  in
  Array.iteri
    (fun i o ->
      if not (terminal o) then
        violation "drain burst request %d lost (no terminal reply)" i)
    drain_outcomes;
  if count `Ok drain_outcomes = 0 then
    violation "drain mid-burst: no admitted job completed";
  Thread.join server;
  if Sys.file_exists socket_path then
    violation "socket %s still exists after drain" socket_path;
  (try Sys.rmdir dir with _ -> ());
  (match !summary with
  | None -> violation "server thread returned no summary"
  | Some s ->
      if not s.Cosynth.Service.drained then
        violation "summary says the daemon did not drain";
      if s.Cosynth.Service.shed = 0 then
        violation "summary counted no shed requests";
      if s.Cosynth.Service.timed_out = 0 then
        violation "summary counted no deadline expiries");
  print_string
    (Cosynth.Report.counts
       ~title:
         (Printf.sprintf
            "one daemon lifetime: capacity %d + queue %d, burst %d, drain \
             mid-burst"
            cap queue burst_n)
       [
         ("unloaded byte-identical replies", List.length expected_unloaded);
         ("shed then completed on retry", count `Ok burst_outcomes);
         ("sheds observed", !sheds);
         ("admitted jobs answered under drain", count `Ok drain_outcomes);
         ( "draining rejects under drain",
           count `Draining drain_outcomes + if late_reject then 1 else 0 );
       ]);
  match List.rev !violations with
  | [] -> Printf.printf "\n  S2: all invariants hold\n"
  | vs ->
      Printf.printf "\n  S2 GATE FAILED: %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) vs;
      exit 1

(* ------------------------------------------------------------------ *)
(* Performance benchmarks (Bechamel)                                   *)
(* ------------------------------------------------------------------ *)

let perf_tests () =
  let open Bechamel in
  let junos_text = Juniper.Printer.print correct_junos in
  let env = Eval.env_of_config border_ir in
  let to_provider = Option.get (Config_ir.find_route_map border_ir "to_provider") in
  let corrupted =
    fst
      (Juniper.Parser.parse
         (Llmsim.Fault.render Llmsim.Fault.Junos_cfg correct_junos
            [
              Llmsim.Fault.make Llmsim.Error_class.Wrong_med
                (Llmsim.Fault.Policy_entry ("to_provider", 10));
            ]))
  in
  let star5 = Star.make ~routers:5 in
  let configs5 =
    List.map
      (fun (t : Cosynth.Modularizer.router_task) ->
        (t.Cosynth.Modularizer.router, t.Cosynth.Modularizer.correct))
      (Cosynth.Modularizer.plan star5)
  in
  let net5 = Cosynth.Modularizer.compose star5 configs5 in
  let our_networks = Option.get (Config_ir.find_prefix_list border_ir "our-networks") in
  let private_ips = Option.get (Config_ir.find_prefix_list border_ir "private-ips") in
  let space_a = Symbolic.Guard.compile_prefix_list our_networks in
  let space_b = Symbolic.Guard.compile_prefix_list private_ips in
  [
    Test.make ~name:"prefix-space/inter+diff"
      (Staged.stage (fun () ->
           ignore
             (Symbolic.Prefix_space.diff space_b (Symbolic.Prefix_space.inter space_a space_b))));
    Test.make ~name:"symbolic/transfer-compile"
      (Staged.stage (fun () -> ignore (Symbolic.Transfer.compile env to_provider)));
    Test.make ~name:"symbolic/policy-diff"
      (Staged.stage (fun () ->
           ignore
             (Symbolic.Policy_diff.compare_maps ~env_a:env
                ~env_b:(Eval.env_of_config corrupted) to_provider
                (Option.get (Config_ir.find_route_map corrupted "to_provider")))));
    Test.make ~name:"cisco/parse"
      (Staged.stage (fun () -> ignore (Cisco.Parser.parse cisco_text)));
    Test.make ~name:"junos/parse"
      (Staged.stage (fun () -> ignore (Juniper.Parser.parse junos_text)));
    Test.make ~name:"junos/translate+print"
      (Staged.stage (fun () ->
           ignore (Juniper.Printer.print (Juniper.Translate.of_cisco_ir border_ir))));
    Test.make ~name:"campion/compare"
      (Staged.stage (fun () ->
           ignore (Campion.Differ.compare ~original:border_ir ~translation:corrupted)));
    Test.make ~name:"batfish/bgp-sim-star5"
      (Staged.stage (fun () -> ignore (Batfish.Bgp_sim.run net5)));
    Test.make ~name:"lightyear/prove-star5"
      (Staged.stage (fun () -> ignore (Cosynth.Lightyear.prove_no_transit star5 configs5)));
    (let acl = Option.get (Config_ir.find_acl border_ir "mgmt-in") in
     let flipped =
       Acl.make acl.Acl.name
         (List.map
            (fun (e : Acl.entry) ->
              if e.Acl.seq = 10 then { e with Acl.action = Action.flip e.Acl.action } else e)
            acl.Acl.entries)
     in
     Test.make ~name:"acl/symbolic-diff"
       (Staged.stage (fun () -> ignore (Symbolic.Acl_diff.compare_acls acl flipped))));
    Test.make ~name:"loop/translation-e2e"
      (Staged.stage (fun () -> ignore (Cosynth.Driver.run_translation ~seed:5 ~cisco_text ())));
    Test.make ~name:"loop/no-transit-5-e2e"
      (Staged.stage (fun () -> ignore (Cosynth.Driver.run_no_transit ~seed:5 ~routers:5 ())));
  ]

let run_perf () =
  section "Performance benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  let grouped = Test.make_grouped ~name:"cosynth" (perf_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  let human ns =
    if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
    else Printf.sprintf "%8.0f ns" ns
  in
  print_string
    (Cosynth.Report.table ~title:"time per run (OLS estimate)"
       ~header:[ "benchmark"; "time/run" ]
       (List.map (fun (n, ns) -> [ n; human ns ]) rows))

(* ------------------------------------------------------------------ *)
(* F1: the fuzzing gate — totality of every pipeline stage             *)
(* ------------------------------------------------------------------ *)

(* Found relative to wherever the harness runs: the repo root (`make
   fuzz`) or _build/default/bench (the check-alias rule). *)
let corpus_dir () =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [ "test/corpus"; "../test/corpus"; "../../test/corpus" ]

let table_f1 () =
  section "F1 — fuzz gate: every stage total on mutated config text";
  Resilience.Guard.reset ();
  let violations = ref [] in
  (* 1. Regression corpus: every previously found crasher stays fixed. *)
  let replayed =
    match corpus_dir () with
    | None ->
        Printf.printf "  regression corpus: not found (run from the repo root)\n";
        []
    | Some dir -> Fuzz.Props.replay_dir dir
  in
  List.iter
    (fun (file, escapes) ->
      List.iter
        (fun e ->
          violations := Printf.sprintf "corpus %s: %s" file (Fuzz.Props.escape_to_string e) :: !violations)
        escapes)
    replayed;
  Printf.printf "  regression corpus: %d file(s) replayed, %d escape(s)\n"
    (List.length replayed)
    (List.fold_left (fun acc (_, es) -> acc + List.length es) 0 replayed);
  (* 2. The planted-bug canary: a deliberately buggy parser must be found,
     minimized and attributed. *)
  (match Fuzz.Props.canary ~max_rounds:(if smoke then 500 else 2000) () with
  | Ok e ->
      Printf.printf
        "  canary: planted parser bug caught at seed=%d round=%d, minimized %dB -> %dB\n\
        \          reported as stage=%s constructor=%s fingerprint=%s\n"
        e.Fuzz.Props.seed e.Fuzz.Props.round
        (String.length e.Fuzz.Props.input)
        (String.length e.Fuzz.Props.minimized)
        e.Fuzz.Props.violation.Fuzz.Props.stage
        e.Fuzz.Props.violation.Fuzz.Props.constructor e.Fuzz.Props.fingerprint
  | Error why -> violations := ("canary: " ^ why) :: !violations);
  (* 3. The seeded mutation sweep over both dialects. COSYNTH_FUZZ_SEEDS /
     COSYNTH_FUZZ_MUTATIONS override the budget for deeper hunts. *)
  let env_int name =
    match Sys.getenv_opt name with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None)
    | None -> None
  in
  let seeds =
    match env_int "COSYNTH_FUZZ_SEEDS" with
    | Some n -> List.init n (fun i -> i + 1)
    | None -> if smoke then [ 1; 2 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let mutations =
    match env_int "COSYNTH_FUZZ_MUTATIONS" with
    | Some n -> n
    | None -> if smoke then 30 else 40
  in
  List.iter
    (fun dialect ->
      let r = Fuzz.Props.run dialect ~seeds ~mutations in
      Printf.printf "  %s: %d mutated input(s), %d escape(s)\n"
        (Fuzz.Corpus.dialect_name dialect)
        r.Fuzz.Props.inputs
        (List.length r.Fuzz.Props.escapes);
      List.iter
        (fun e -> violations := Fuzz.Props.escape_to_string e :: !violations)
        r.Fuzz.Props.escapes)
    [ Fuzz.Corpus.Cisco; Fuzz.Corpus.Junos ];
  (* 3b. Structured-text targets: the topology verifier on mutated JSON
     dictionaries and the policy parser + semantic check on mutated policy
     fragments, both under the weighted (coverage-guided) schedule. *)
  List.iter
    (fun (name, run_target) ->
      let schedule = Fuzz.Mutator.history () in
      let r = run_target ~schedule ~seeds ~mutations () in
      let hot =
        List.filter
          (fun (_, s) -> s > 0)
          (List.init Fuzz.Mutator.n_ops (fun op ->
               (Fuzz.Mutator.op_name op, Fuzz.Mutator.score schedule ~op)))
      in
      Printf.printf "  %s: %d mutated input(s), %d escape(s)%s\n" name
        r.Fuzz.Props.inputs
        (List.length r.Fuzz.Props.escapes)
        (match hot with
        | [] -> ""
        | _ ->
            Printf.sprintf " (op scores: %s)"
              (String.concat ", "
                 (List.map (fun (n, s) -> Printf.sprintf "%s=%d" n s) hot)));
      List.iter
        (fun e ->
          violations := Printf.sprintf "%s: %s" name (Fuzz.Props.escape_to_string e) :: !violations)
        r.Fuzz.Props.escapes)
    [
      ("topology", fun ~schedule -> Fuzz.Props.run_topology ~schedule);
      ("policy", fun ~schedule -> Fuzz.Props.run_policy ~schedule);
    ];
  (* 4. Crash buckets: everything Guard caught during the gate, by stage
     and constructor (the canary's bucket demonstrates the accounting). *)
  (match Resilience.Guard.crashes () with
  | [] -> Printf.printf "\n  guarded crashes: none\n"
  | rows ->
      print_string
        (Cosynth.Report.table ~title:"guarded crashes by stage/constructor"
           ~header:[ "stage"; "constructor"; "count" ]
           (List.map
              (fun (stage, ctor, n) -> [ stage; ctor; string_of_int n ])
              rows)));
  match List.rev !violations with
  | [] -> Printf.printf "\n  F1: zero unguarded escapes\n"
  | vs ->
      Printf.printf "\n  F1 GATE FAILED: %d escape(s)\n" (List.length vs);
      List.iter (fun v -> Printf.printf "  ESCAPE %s\n" v) vs;
      exit 1

(* ------------------------------------------------------------------ *)
(* A1: the adversarial-robustness gate                                  *)
(* ------------------------------------------------------------------ *)

(* Every adversary dimension, Byzantine-LLM and feedback-corruption alike,
   as (spec builder, row label) pairs for the leverage table. *)
let a1_dimensions =
  List.map
    (fun m ->
      ( (fun rate ->
          Adversary.Spec.make
            ~llm:(Adversary.Llm.with_rate (Adversary.Llm.make ()) m rate)
            ()),
        "llm:" ^ Adversary.Llm.mode_name m ))
    Adversary.Llm.all_modes
  @ List.map
      (fun m ->
        ( (fun rate ->
            Adversary.Spec.make
              ~findings:
                (Adversary.Findings.with_rate
                   (Adversary.Findings.make ()) m rate)
              ()),
          "feedback:" ^ Adversary.Findings.mode_name m ))
      Adversary.Findings.all_modes

let a1_rates = [ 0.0; 0.15; 0.4 ]
let a1_budget = 40

let table_a1 () =
  section "A1 — adversarial robustness: leverage vs adversary rate x mode";
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let n = if smoke then 4 else 20 in
  let seeds = Exec.Sweep.seeds ~base:9900 ~n in
  (* 1. The rate-0 identity pin: a spec with every rate 0 must leave both
     renderings of the transcript byte-identical to a run with no spec at
     all. *)
  List.iter
    (fun seed ->
      let t spec =
        (Cosynth.Driver.run_translation ~seed ?adversary:spec ~cisco_text ())
          .Cosynth.Driver.transcript
      in
      let plain = t None and zero = t (Some Adversary.Spec.none) in
      if
        Cosynth.Driver.transcript_to_markdown ~title:"A1" plain
        <> Cosynth.Driver.transcript_to_markdown ~title:"A1" zero
      then violation "rate-0 markdown identity broken at seed %d" seed;
      if
        Netcore.Json.to_string (Cosynth.Driver.transcript_to_json plain)
        <> Netcore.Json.to_string (Cosynth.Driver.transcript_to_json zero)
      then violation "rate-0 JSON identity broken at seed %d" seed)
    seeds;
  Printf.printf "  rate-0 identity: %d seed(s), markdown and JSON byte-identical\n"
    (List.length seeds);
  (* 2. The leverage table: one sweep per (mode, rate) cell. Each hardened
     transcript must stay within budget and carry a certificate; a rate-0
     spec must carry none. *)
  let sweep spec_opt =
    List.map
      (fun seed ->
        (Cosynth.Driver.run_translation ~seed ?adversary:spec_opt
           ~max_prompts:a1_budget ~cisco_text ())
          .Cosynth.Driver.transcript)
      seeds
  in
  let fmt_cell s =
    Printf.sprintf "%5.1fx%s %d/%d" s.Cosynth.Metrics.mean_leverage
      (if s.Cosynth.Metrics.infinite_leverage > 0 then "*" else " ")
      s.Cosynth.Metrics.converged s.Cosynth.Metrics.runs
  in
  let all_certs = ref [] in
  let rows =
    List.map
      (fun (spec_of_rate, label) ->
        let cells =
          List.map
            (fun rate ->
              let spec = spec_of_rate rate in
              let hardened = not (Adversary.Spec.is_none spec) in
              let ts = sweep (Some spec) in
              List.iter2
                (fun seed (t : Cosynth.Driver.transcript) ->
                  let prompts = t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts in
                  if prompts > a1_budget then
                    violation "%s rate %.2f seed %d: %d prompts exceed budget %d"
                      label rate seed prompts a1_budget;
                  match (hardened, t.Cosynth.Driver.certificate) with
                  | true, None ->
                      violation "%s rate %.2f seed %d: hardened run without certificate"
                        label rate seed
                  | false, Some _ ->
                      violation "%s rate %.2f seed %d: rate-0 run carries a certificate"
                        label rate seed
                  | _ -> ())
                seeds ts;
              if hardened then all_certs := !all_certs @ ts;
              Cosynth.Metrics.summarize ts)
            a1_rates
        in
        (* Monotonic-ish degradation: an adversary can inflate raw leverage
           (it manufactures automated busywork) and can even cut prompt
           counts (the watchdog ends a hopeless run early), so the gate pins
           the one quantity an adversary can only hurt — the heaviest rate
           must not converge more often than the clean loop. *)
        (match (cells, List.rev cells) with
        | base :: _, worst :: _ ->
            if worst.Cosynth.Metrics.converged > base.Cosynth.Metrics.converged then
              violation "%s: attack improved convergence (%d/%d -> %d/%d)" label
                base.Cosynth.Metrics.converged base.Cosynth.Metrics.runs
                worst.Cosynth.Metrics.converged worst.Cosynth.Metrics.runs
        | _ -> ());
        label :: List.map fmt_cell cells)
      a1_dimensions
  in
  print_string
    (Cosynth.Report.table
       ~title:
         (Printf.sprintf
            "mean leverage and converged/runs, %d seed(s) per cell (* = some runs \
             with no human prompt)"
            n)
       ~header:("adversary mode" :: List.map (Printf.sprintf "rate %.2f") a1_rates)
       rows);
  print_string
    (Cosynth.Report.counts ~title:"convergence certificates (hardened cells)"
       (Cosynth.Metrics.certificates !all_certs));
  (* 3. Loop-level fuzzers: the corrupted-findings feedback path at rate 1
     per corruption mode, and the full loop under each Byzantine-LLM mode. *)
  let cases = if smoke then 60 else 250 in
  List.iter
    (fun mode ->
      let vs = Fuzz.Props.fuzz_corrupted_findings ~mode ~seed:7 ~cases in
      Printf.printf "  corrupted-findings fuzz [%s]: %d case(s), %d escape(s)\n"
        (Adversary.Findings.mode_name mode)
        cases (List.length vs);
      List.iter
        (fun (v : Fuzz.Props.violation) ->
          violation "corrupted-findings [%s]: %s in %s (%s)"
            (Adversary.Findings.mode_name mode)
            v.Fuzz.Props.constructor v.Fuzz.Props.stage v.Fuzz.Props.detail)
        vs)
    Adversary.Findings.all_modes;
  let loop_seeds = if smoke then [ 11 ] else [ 11; 12; 13; 14 ] in
  List.iter
    (fun mode ->
      List.iter
        (fun seed ->
          List.iter
            (fun (v : Fuzz.Props.violation) ->
              violation "loop fuzz [%s] seed %d: %s (%s)"
                (Adversary.Llm.mode_name mode)
                seed v.Fuzz.Props.property v.Fuzz.Props.detail)
            (Fuzz.Props.fuzz_loop ~mode ~seed ~rate:0.35))
        loop_seeds)
    Adversary.Llm.all_modes;
  Printf.printf "  loop fuzz: %d mode(s) x %d seed(s) at rate 0.35, all within budget\n"
    (List.length Adversary.Llm.all_modes)
    (List.length loop_seeds);
  match List.rev !violations with
  | [] -> Printf.printf "\n  A1: all invariants hold\n"
  | vs ->
      Printf.printf "\n  A1 GATE FAILED: %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) vs;
      exit 1

(* Every verifier-lie mode as (config builder, row label) pairs for the A2
   headline table. The adaptive false-negative variant gets its own row so
   the escalation schedule is swept alongside the flat rates. *)
let a2_modes =
  [
    ( (fun rate -> Adversary.Verifier.make ~false_negative:rate ()),
      "lie:false-negative" );
    ( (fun rate -> Adversary.Verifier.make ~false_positive:rate ()),
      "lie:false-positive" );
    ((fun rate -> Adversary.Verifier.make ~mutated:rate ()), "lie:mutated");
    ( (fun rate -> Adversary.Verifier.make ~false_negative:rate ~adaptive:true ()),
      "lie:false-negative+adaptive" );
  ]

let a2_rates = [ 0.0; 0.35; 0.6 ]
let a2_budget = 40

let table_a2 () =
  section "A2 — Byzantine verifiers: lying checks vs the cross-check trust layer";
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let n = if smoke then 4 else 12 in
  let seeds = Exec.Sweep.seeds ~base:9950 ~n in
  let trust_cfg = Resilience.Trust.default_config in
  let md = Cosynth.Driver.transcript_to_markdown ~title:"A2" in
  let js t = Netcore.Json.to_string (Cosynth.Driver.transcript_to_json t) in
  (* 1. The identity pins. A spec whose only payload is an all-zero verifier
     config (adaptivity on, with nothing to escalate) must leave both
     transcript renderings byte-identical to a plain run — the rate-0
     invariant A1 pins, extended to the verifier-lie dimension. And arming
     the trust ledger against *honest* verifiers must change nothing either:
     cross-checks that agree are silent. *)
  List.iter
    (fun seed ->
      let run ?adversary ?trust () =
        (Cosynth.Driver.run_translation ~seed ?adversary ?trust ~cisco_text ())
          .Cosynth.Driver.transcript
      in
      let plain = run () in
      let zero =
        run
          ~adversary:
            (Adversary.Spec.make ~verifier:(Adversary.Verifier.make ~adaptive:true ()) ())
          ()
      in
      if md plain <> md zero then
        violation "rate-0 verifier-lie markdown identity broken at seed %d" seed;
      if js plain <> js zero then
        violation "rate-0 verifier-lie JSON identity broken at seed %d" seed;
      let honest_trust = run ~trust:trust_cfg () in
      if md plain <> md honest_trust then
        violation "honest trust-on markdown identity broken at seed %d" seed;
      if js plain <> js honest_trust then
        violation "honest trust-on JSON identity broken at seed %d" seed)
    seeds;
  Printf.printf
    "  rate-0 + honest-trust identity: %d seed(s), markdown and JSON byte-identical\n"
    (List.length seeds);
  (* 2. The headline sweep: end-state verified rate (the raw Batfish+Campion
     recheck of the final draft — the one signal a lying verifier cannot
     forge) and detected lies, trust off vs on, per (mode, rate) cell. Runs
     stay sequential so each run's global trust-counter delta is
     attributable to it — the per-run budget-compliance check needs that. *)
  let sweep ~trust spec_opt =
    List.map
      (fun seed ->
        let before = Resilience.Trust.snapshot () in
        let r =
          Cosynth.Driver.run_translation ~seed ?adversary:spec_opt
            ?trust:(if trust then Some trust_cfg else None)
            ~max_prompts:a2_budget ~cisco_text ()
        in
        let delta =
          Resilience.Trust.totals
            (Resilience.Trust.diff (Resilience.Trust.snapshot ()) before)
        in
        (r, delta))
      seeds
  in
  let verified rs =
    List.length
      (List.filter
         (fun ((r : Cosynth.Driver.translation_result), _) -> r.Cosynth.Driver.verified)
         rs)
  in
  let lies rs =
    List.fold_left (fun acc (_, d) -> acc + d.Resilience.Trust.disagreements) 0 rs
  in
  let honest_verified = verified (sweep ~trust:false None) in
  let rows, perf =
    Cosynth.Metrics.measure (fun () ->
        List.map
          (fun (cfg_of_rate, label) ->
            let cells =
              List.map
                (fun rate ->
                  let vcfg = cfg_of_rate rate in
                  let spec = Adversary.Spec.make ~verifier:vcfg () in
                  let hardened = not (Adversary.Spec.is_none spec) in
                  let spec_opt = if hardened then Some spec else None in
                  let off = sweep ~trust:false spec_opt in
                  let on = sweep ~trust:true spec_opt in
                  List.iter
                    (fun (tag, runs, trust) ->
                      List.iter2
                        (fun seed ((r : Cosynth.Driver.translation_result), d) ->
                          let t = r.Cosynth.Driver.transcript in
                          let prompts =
                            t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts
                          in
                          if prompts > a2_budget then
                            violation "%s rate %.2f seed %d [%s]: %d prompts exceed budget %d"
                              label rate seed tag prompts a2_budget;
                          (match (hardened, t.Cosynth.Driver.certificate) with
                          | true, None ->
                              violation
                                "%s rate %.2f seed %d [%s]: hardened run without certificate"
                                label rate seed tag
                          | false, Some _ ->
                              violation
                                "%s rate %.2f seed %d [%s]: rate-0 run carries a certificate"
                                label rate seed tag
                          | _ -> ());
                          if trust then begin
                            if
                              d.Resilience.Trust.cross_checks
                              > trust_cfg.Resilience.Trust.check_budget
                            then
                              violation
                                "%s rate %.2f seed %d: %d cross-checks exceed budget %d"
                                label rate seed d.Resilience.Trust.cross_checks
                                trust_cfg.Resilience.Trust.check_budget
                          end
                          else if d <> Resilience.Trust.zero then
                            violation
                              "%s rate %.2f seed %d: trust-off run recorded trust activity"
                              label rate seed)
                        seeds runs)
                    [ ("trust off", off, false); ("trust on", on, true) ];
                  (* The acceptance headline, pinned on the false-negative
                     rows (the swallowed-findings attack the trust layer
                     exists for): at rate >= 0.3 the ledger must restore the
                     verified rate to >= 80% of the honest baseline, the
                     trust-off ablation must do strictly worse, and at least
                     one lie must actually be caught. *)
                  if vcfg.Adversary.Verifier.false_negative >= 0.3 then begin
                    if
                      float_of_int (verified on)
                      < 0.8 *. float_of_int honest_verified
                    then
                      violation
                        "%s rate %.2f: trust-on verified %d/%d below 80%% of honest %d/%d"
                        label rate (verified on) n honest_verified n;
                    if verified off >= verified on then
                      violation
                        "%s rate %.2f: trust-off ablation shows no collapse (%d/%d vs %d/%d)"
                        label rate (verified off) n (verified on) n;
                    if lies on = 0 then
                      violation "%s rate %.2f: trust layer detected no lies" label rate
                  end;
                  (verified off, verified on, lies on))
                a2_rates
            in
            label
            :: List.map
                 (fun (voff, von, l) -> Printf.sprintf "%d/%d|%d/%d L%-3d" voff n von n l)
                 cells)
          a2_modes)
  in
  print_string
    (Cosynth.Report.table
       ~title:
         (Printf.sprintf
            "verified runs, trust off|on, and detected lies (L), %d seed(s) per cell \
             (honest baseline %d/%d)"
            n honest_verified n)
       ~header:("lie mode" :: List.map (Printf.sprintf "rate %.2f") a2_rates)
       rows);
  print_string
    (Cosynth.Report.table ~title:"trust-layer activity over the sweep (trust-on cells)"
       ~header:Cosynth.Metrics.trust_header
       (Cosynth.Metrics.trust_rows perf));
  Format.printf "  %a@." Cosynth.Metrics.pp_perf perf;
  match List.rev !violations with
  | [] -> Printf.printf "\n  A2: all invariants hold\n"
  | vs ->
      Printf.printf "\n  A2 GATE FAILED: %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) vs;
      exit 1

(* ------------------------------------------------------------------ *)
(* A3 — collusion-resistant trust: the compromised-oracle gate          *)
(* ------------------------------------------------------------------ *)

(* The coalition under test: the two cheapest-to-own kinds plus the
   cross-check oracle itself — the configuration PR 8's
   oracle-as-ground-truth trust layer cannot see at all. *)
let a3_coalition = [ Resilience.Verifier.Parse_check; Resilience.Verifier.Campion ]
let a3_rates = [ 0.0; 0.35 ]
let a3_budget = 60

let table_a3 () =
  section
    "A3 — Collusion-resistant trust: compromised oracle vs quorum cross-checks";
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let n = if smoke then 4 else 12 in
  let seeds = Exec.Sweep.seeds ~base:9980 ~n in
  let cfg = Resilience.Trust.default_config in
  let md = Cosynth.Driver.transcript_to_markdown ~title:"A3" in
  let js t = Netcore.Json.to_string (Cosynth.Driver.transcript_to_json t) in
  let collusion ~rate seed =
    Adversary.Spec.make
      ~collusion:
        (Adversary.Collusion.make ~members:a3_coalition ~oracle:true ~rate ~seed ())
      ()
  in
  (* 1. The identity pins. An armed coalition at rate 0 must leave both
     transcript renderings byte-identical to a plain run (the A1/A2 rate-0
     invariant, extended to the collusion dimension); auditing honest
     clean-agreements must change nothing either; and a trust ledger
     restored from an all-initial-scores persisted entry must behave
     exactly like a freshly created one, under attack included. *)
  List.iter
    (fun seed ->
      let run ?adversary ?trust ?trust_ledger () =
        (Cosynth.Driver.run_translation ~seed ?adversary ?trust ?trust_ledger
           ~cisco_text ())
          .Cosynth.Driver.transcript
      in
      let plain = run () in
      let zero = run ~adversary:(collusion ~rate:0.0 seed) () in
      if md plain <> md zero then
        violation "rate-0 collusion markdown identity broken at seed %d" seed;
      if js plain <> js zero then
        violation "rate-0 collusion JSON identity broken at seed %d" seed;
      let honest_quorum = run ~trust:cfg () in
      if md plain <> md honest_quorum then
        violation "honest-quorum markdown identity broken at seed %d" seed;
      if js plain <> js honest_quorum then
        violation "honest-quorum JSON identity broken at seed %d" seed;
      let initial =
        Resilience.Trust.state_of (Resilience.Trust.create cfg)
          ~counters:Resilience.Trust.zero ~quorum:Resilience.Trust.zero_quorum
      in
      let fresh = run ~adversary:(collusion ~rate:0.5 seed) ~trust:cfg () in
      let restored =
        run ~adversary:(collusion ~rate:0.5 seed)
          ~trust_ledger:(Resilience.Trust.create_from cfg initial)
          ()
      in
      if md fresh <> md restored then
        violation "restored-ledger transcript diverges from fresh at seed %d" seed)
    seeds;
  Printf.printf
    "  rate-0 + honest-quorum + restored-ledger identity: %d seed(s) byte-identical\n"
    (List.length seeds);
  (* 2. The headline sweep: end-state verified rate (the raw recheck of the
     final draft — the one signal even a compromised oracle cannot forge)
     per defense x collusion rate. Oracle-only (audit budget 0) is PR 8's
     trust layer: under a coalition that owns the oracle every cross-check
     agrees with the lie, so it must collapse. Quorum K=4 hand-runs
     referees that outweigh the two-party camp and must restore the
     verified rate; K=3 is the deliberately-too-small quorum the camp
     outvotes. Runs stay sequential so each run's quorum-counter delta is
     attributable to it. *)
  let modes =
    [
      ("oracle-only (PR 8)", { cfg with Resilience.Trust.audit_budget = 0 });
      ("quorum K=4", cfg);
      ("quorum K=3", { cfg with Resilience.Trust.quorum = 3 });
    ]
  in
  let sweep trust_cfg rate =
    List.map
      (fun seed ->
        let q0 = Resilience.Trust.quorum_snapshot () in
        let spec = collusion ~rate seed in
        let adversary = if Adversary.Spec.is_none spec then None else Some spec in
        let r =
          Cosynth.Driver.run_translation ~seed ?adversary ~trust:trust_cfg
            ~max_prompts:a3_budget ~cisco_text ()
        in
        let dq =
          Resilience.Trust.diff_quorum (Resilience.Trust.quorum_snapshot ()) q0
        in
        (r, dq))
      seeds
  in
  let results, perf =
    Cosynth.Metrics.measure (fun () ->
        List.map
          (fun (label, trust_cfg) ->
            let cells =
              List.map
                (fun rate ->
                  let runs = sweep trust_cfg rate in
                  let verified =
                    List.length
                      (List.filter
                         (fun ((r : Cosynth.Driver.translation_result), _) ->
                           r.Cosynth.Driver.verified)
                         runs)
                  in
                  let overruled =
                    List.fold_left
                      (fun acc (_, dq) -> acc + dq.Resilience.Trust.overruled)
                      0 runs
                  in
                  let oracle_q =
                    List.fold_left
                      (fun acc (_, dq) ->
                        acc + dq.Resilience.Trust.oracle_quarantines)
                      0 runs
                  in
                  List.iter2
                    (fun seed (_, dq) ->
                      (* Overruled audits refund their charge, so the budget
                         bounds the audits that found nothing. *)
                      if
                        dq.Resilience.Trust.audits - dq.Resilience.Trust.overruled
                        > trust_cfg.Resilience.Trust.audit_budget
                      then
                        violation
                          "%s rate %.2f seed %d: %d charged audits exceed budget %d"
                          label rate seed
                          (dq.Resilience.Trust.audits - dq.Resilience.Trust.overruled)
                          trust_cfg.Resilience.Trust.audit_budget)
                    seeds runs;
                  if rate = 0.0 then begin
                    (* Collusion-free, the quorum may spend audits but must
                       never overrule an honest agreement or quarantine the
                       honest oracle. *)
                    if overruled > 0 then
                      violation "%s rate 0: %d honest agreement(s) overruled" label
                        overruled;
                    if oracle_q > 0 then
                      violation "%s rate 0: honest oracle quarantined" label
                  end;
                  (verified, overruled, oracle_q))
                a3_rates
            in
            (label, trust_cfg, cells))
          modes)
  in
  (* 3. The acceptance headline, pinned at every attack rate >= 0.35: the
     oracle-only defense must collapse (collusion wins), the full quorum
     must restore the verified rate and both catch collusions and
     quarantine the compromised oracle. K=3 carries no bound — losing is
     its documented behavior — but it must never beat K=4. *)
  List.iter
    (fun (label, trust_cfg, cells) ->
      List.iter2
        (fun rate (verified, overruled, oracle_q) ->
          if rate >= 0.35 then
            if trust_cfg.Resilience.Trust.audit_budget = 0 then begin
              if verified > (2 * n + 11) / 12 then
                violation
                  "%s rate %.2f: oracle-only verified %d/%d — the coalition should win"
                  label rate verified n
            end
            else if trust_cfg.Resilience.Trust.quorum >= 4 then begin
              if verified < 10 * n / 12 then
                violation "%s rate %.2f: quorum verified %d/%d below the 10/12 bar"
                  label rate verified n;
              if overruled = 0 then
                violation "%s rate %.2f: no colluding agreement overruled" label rate;
              if oracle_q = 0 then
                violation "%s rate %.2f: compromised oracle never quarantined" label
                  rate
            end)
        a3_rates cells)
    results;
  (match (List.nth_opt results 1, List.nth_opt results 2) with
  | Some (_, _, k4), Some (_, _, k3) ->
      List.iter2
        (fun rate ((v4, _, _), (v3, _, _)) ->
          if rate >= 0.35 && v3 > v4 then
            violation "quorum K=3 verified %d/%d beats K=4's %d/%d at rate %.2f" v3 n
              v4 n rate)
        a3_rates (List.combine k4 k3)
  | _ -> ());
  print_string
    (Cosynth.Report.table
       ~title:
         (Printf.sprintf
            "verified runs V, overruled collusions C, oracle quarantines OQ; \
             coalition {parse-check, campion} + oracle, %d seed(s) per cell"
            n)
       ~header:("defense" :: List.map (Printf.sprintf "rate %.2f") a3_rates)
       (List.map
          (fun (label, _, cells) ->
            label
            :: List.map
                 (fun (v, c, oq) -> Printf.sprintf "%d/%d C%-3d OQ%-2d" v n c oq)
                 cells)
          results));
  print_string
    (Cosynth.Report.table ~title:"trust-layer activity over the sweep"
       ~header:Cosynth.Metrics.trust_header
       (Cosynth.Metrics.trust_rows perf));
  Format.printf "  %a@." Cosynth.Metrics.pp_perf perf;
  match List.rev !violations with
  | [] -> Printf.printf "\n  A3: all invariants hold\n"
  | vs ->
      Printf.printf "\n  A3 GATE FAILED: %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) vs;
      exit 1

(* ------------------------------------------------------------------ *)
(* D1: the durability gate — crash at every write point, recover       *)
(* ------------------------------------------------------------------ *)

let d1_tmp_dir () =
  let dir = Filename.temp_file "cosynth-d1" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  dir

let d1_rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let d1_file_bytes path =
  if Sys.file_exists path then
    In_channel.with_open_bin path In_channel.input_all
  else "<absent>"

(* One scripted persistence surface. [d_prefix ~dir ~k] replays the first
   [k] scripted records into a fresh [dir] (k = d_script_len is the whole
   script); [d_recover] digests whatever survives on disk — it must be
   total; [d_resume] finishes an interrupted run the way the surface's
   real resume path would. [d_compacted] pins post-resume byte-identity
   for the surfaces that own a compactor. *)
type d1_kind = {
  d_name : string;
  d_script_len : int;
  d_prefix : dir:string -> k:int -> unit;
  d_recover : dir:string -> string;
  d_resume : dir:string -> unit;
  d_compacted : (dir:string -> string) option;
}

let d1_journal_kind n =
  let file dir = Filename.concat dir "journal.jsonl" in
  let payload s =
    Netcore.Json.Obj
      [ ("ok", Netcore.Json.Bool true); ("cost", Netcore.Json.Int (s * 7)) ]
  in
  let seeds = List.init n (fun i -> i + 1) in
  let record dir ss =
    let j = Exec.Checkpoint.open_ (file dir) in
    Fun.protect
      ~finally:(fun () -> Exec.Checkpoint.close j)
      (fun () -> List.iter (fun s -> Exec.Checkpoint.record j ~seed:s (payload s)) ss)
  in
  {
    d_name = "checkpoint journal";
    d_script_len = n;
    d_prefix = (fun ~dir ~k -> record dir (List.filteri (fun i _ -> i < k) seeds));
    d_recover =
      (fun ~dir ->
        String.concat ";"
          (List.map
             (fun (s, j) -> Printf.sprintf "%d=%s" s (Netcore.Json.to_string j))
             (Exec.Checkpoint.load (file dir))));
    d_resume =
      (fun ~dir ->
        let done_ = List.map fst (Exec.Checkpoint.load (file dir)) in
        let missing = List.filter (fun s -> not (List.mem s done_)) seeds in
        if missing <> [] then record dir missing);
    d_compacted =
      Some
        (fun ~dir ->
          ignore (Exec.Checkpoint.compact (file dir) : int * int);
          d1_file_bytes (file dir));
  }

let d1_ledger_kind n =
  let module T = Resilience.Trust in
  let file dir = Filename.concat dir "trust.jsonl" in
  let entry i =
    T.state_of
      (T.create T.default_config)
      ~counters:{ T.zero with T.cross_checks = i; T.agreements = i mod 2 }
      ~quorum:T.zero_quorum
  in
  let seeds = List.init n (fun i -> i + 1) in
  let record dir ss =
    let h = T.Ledger_store.open_ (file dir) in
    Fun.protect
      ~finally:(fun () -> T.Ledger_store.close h)
      (fun () -> List.iter (fun s -> T.Ledger_store.record h ~seed:s (entry s)) ss)
  in
  {
    d_name = "trust ledger";
    d_script_len = n;
    d_prefix = (fun ~dir ~k -> record dir (List.filteri (fun i _ -> i < k) seeds));
    d_recover =
      (fun ~dir ->
        match T.Ledger_store.load (file dir) with
        | None -> "<empty>"
        | Some e -> Netcore.Json.to_string (T.Ledger_store.entry_to_json e));
    d_resume =
      (* The ledger is last-write-wins per seed and its per-seed entries
         are deterministic, so a resume simply re-records every seed:
         survivors are overwritten with identical state and lost lines
         reappear — the merged load converges on the intact state. *)
      (fun ~dir -> record dir seeds);
    d_compacted = None;
  }

let d1_triage_kind n =
  let file dir = Filename.concat dir "triage.jsonl" in
  let row s = (Printf.sprintf "stage%02d" s, "Failure", s) in
  let seeds = List.init n (fun i -> i + 1) in
  let append dir s =
    let stage, ctor, count = row s in
    Resilience.Triage.append ~path:(file dir) ~seed:s [ (stage, ctor, count) ]
  in
  {
    d_name = "crash triage";
    d_script_len = n;
    d_prefix =
      (fun ~dir ~k -> List.iter (append dir) (List.filteri (fun i _ -> i < k) seeds));
    d_recover =
      (fun ~dir ->
        String.concat ";"
          (List.map
             (fun (r : Resilience.Triage.row) ->
               Printf.sprintf "%s/%s=%d@%d-%d" r.stage r.constructor r.count
                 r.first_seed r.last_seed)
             (Resilience.Triage.load (file dir))));
    d_resume =
      (fun ~dir ->
        let have =
          List.map
            (fun (r : Resilience.Triage.row) -> r.stage)
            (Resilience.Triage.load (file dir))
        in
        List.iter
          (fun s ->
            let stage, _, _ = row s in
            if not (List.mem stage have) then append dir s)
          seeds);
    d_compacted = None;
  }

(* Kill one surface at every write point of its scripted run. The valid
   recovery states are exactly the script prefixes (a torn trailing line
   fails the CRC and drops, so a crash can never land between records);
   after a fault-off resume the state must equal the intact run's, and a
   surface with a compactor must be byte-identical to it. Returns
   (write points, crash points with a clean prefix recovery, crash
   points whose resume converged). *)
let d1_drill ~violation kind =
  let n = kind.d_script_len in
  let in_fresh_dir f =
    let dir = d1_tmp_dir () in
    Fun.protect ~finally:(fun () -> d1_rm_rf dir) (fun () -> f dir)
  in
  let states =
    Array.init (n + 1) (fun k ->
        in_fresh_dir (fun dir ->
            kind.d_prefix ~dir ~k;
            kind.d_recover ~dir))
  in
  let intact_compacted =
    match kind.d_compacted with
    | None -> None
    | Some f ->
        Some
          (in_fresh_dir (fun dir ->
               kind.d_prefix ~dir ~k:n;
               f ~dir))
  in
  (* Count the schedule's write points with an all-zero-rate config
     installed: it injects nothing but counts every write, fsync and
     rename the script performs. *)
  let w =
    in_fresh_dir (fun dir ->
        Resilience.Diskchaos.install (Resilience.Diskchaos.make ~seed:0 ());
        Fun.protect
          ~finally:(fun () -> Resilience.Diskchaos.uninstall ())
          (fun () ->
            kind.d_prefix ~dir ~k:n;
            (Resilience.Diskchaos.stats ()).Resilience.Diskchaos.ops))
  in
  let recovered = ref 0 and resumed = ref 0 in
  for i = 0 to w - 1 do
    in_fresh_dir (fun dir ->
        Fun.protect
          ~finally:(fun () -> Resilience.Diskchaos.uninstall ())
          (fun () ->
            Resilience.Diskchaos.install
              (Resilience.Diskchaos.make ~crash_after:i ~seed:(1000 + i) ());
            (match kind.d_prefix ~dir ~k:n with
            | () ->
                violation
                  (Printf.sprintf
                     "%s: crash_after=%d: the script completed without crashing"
                     kind.d_name i)
            | exception Resilience.Diskchaos.Crashed _ -> ());
            Resilience.Diskchaos.uninstall ();
            let got = kind.d_recover ~dir in
            if Array.exists (String.equal got) states then incr recovered
            else
              violation
              (Printf.sprintf "%s: crash at write point %d recovered a non-prefix state: %s"
                kind.d_name i got);
            kind.d_resume ~dir;
            let final = kind.d_recover ~dir in
            if String.equal final states.(n) then incr resumed
            else
              violation
              (Printf.sprintf "%s: crash at write point %d: resume did not converge: %s"
                kind.d_name i final);
            match (kind.d_compacted, intact_compacted) with
            | Some f, Some want ->
                let got = f ~dir in
                if not (String.equal got want) then
                  violation
                    (Printf.sprintf
                       "%s: crash at write point %d: compacted bytes differ from \
                        the intact run's"
                       kind.d_name i)
            | _ -> ()))
  done;
  (w, !recovered, !resumed)

(* Corruption totality: over the wire bytes of a framed journal, truncate
   at every byte offset and flip one bit at every byte position. Reads
   must never raise, never decode a phantom record, and lose at most the
   lines the damaged byte touches (a flipped newline merges two). *)
let d1_corruption_sweep ~violation () =
  let dir = d1_tmp_dir () in
  Fun.protect
    ~finally:(fun () -> d1_rm_rf dir)
    (fun () ->
      let path = Filename.concat dir "sweep.jsonl" in
      let records =
        List.init 6 (fun i ->
            Netcore.Json.Obj
              [
                ("seed", Netcore.Json.Int (i + 1));
                ("note", Netcore.Json.String (Printf.sprintf "record-%d" (i + 1)));
              ])
      in
      let bytes =
        String.concat ""
          (List.map
             (fun j -> Resilience.Store.frame (Netcore.Json.to_string j))
             records)
      in
      let intact = List.map Netcore.Json.to_string records in
      let read_mutant tag s =
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s);
        match Resilience.Store.read path with
        | recs, _ -> Some (List.map Netcore.Json.to_string recs)
        | exception e ->
            violation
              (Printf.sprintf "corruption sweep: %s: read raised %s" tag
              (Printexc.to_string e));
            None
      in
      let len = String.length bytes in
      for off = 0 to len do
        match read_mutant (Printf.sprintf "truncation at %d" off)
                (String.sub bytes 0 off)
        with
        | None -> ()
        | Some got ->
            let rec is_prefix a b =
              match (a, b) with
              | [], _ -> true
              | x :: a', y :: b' when String.equal x y -> is_prefix a' b'
              | _ -> false
            in
            if not (is_prefix got intact) then
              violation
                (Printf.sprintf
                   "corruption sweep: truncation at %d decoded a non-prefix" off)
      done;
      Printf.printf
        "  truncation: %d offset(s) swept, every surviving decode a clean prefix\n"
        (len + 1);
      for p = 0 to len - 1 do
        let b = Bytes.of_string bytes in
        Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor 1));
        match read_mutant (Printf.sprintf "bit flip at %d" p) (Bytes.to_string b)
        with
        | None -> ()
        | Some got ->
            if List.exists (fun g -> not (List.mem g intact)) got then
              violation
                (Printf.sprintf
                   "corruption sweep: bit flip at %d decoded a phantom record" p)
            else if List.length got < List.length intact - 2 then
              violation
                (Printf.sprintf "corruption sweep: bit flip at %d lost %d record(s)"
                   p
                   (List.length intact - List.length got))
      done;
      Printf.printf
        "  bit flips: %d position(s) swept, no exception, no phantom, <= 2 lines \
         lost each\n"
        len)

(* Atomic promotion: crash an atomic replace at each of its write points;
   the target must be either the old artifact or the new one (or still
   absent on first promotion) — never a torn hybrid — and a fault-off
   retry must converge. The corpus promoter and the admission-cap tooling
   both ride this exact path. *)
let d1_promotion ~violation () =
  let dir = d1_tmp_dir () in
  Fun.protect
    ~finally:(fun () ->
      Resilience.Diskchaos.uninstall ();
      d1_rm_rf dir)
    (fun () ->
      let target = Filename.concat dir "promoted-parse-Failure.txt" in
      let old_content = "interface OLD\n" and new_content = "interface NEW\n" in
      Resilience.Diskchaos.install (Resilience.Diskchaos.make ~seed:0 ());
      if not (Resilience.Store.write_atomic target new_content) then
        violation "promotion: fault-free write_atomic failed";
      let w = (Resilience.Diskchaos.stats ()).Resilience.Diskchaos.ops in
      Resilience.Diskchaos.uninstall ();
      Printf.printf "  corpus promotion: %d write point(s) per atomic replace\n" w;
      List.iter
        (fun pre_existing ->
          for i = 0 to w - 1 do
            if Sys.file_exists target then Sys.remove target;
            if Sys.file_exists (target ^ ".tmp") then Sys.remove (target ^ ".tmp");
            if pre_existing then
              Out_channel.with_open_bin target (fun oc ->
                  Out_channel.output_string oc old_content);
            Resilience.Diskchaos.install
              (Resilience.Diskchaos.make ~crash_after:i ~seed:(2000 + i) ());
            (match Resilience.Store.write_atomic target new_content with
            | ok ->
                violation
                  (Printf.sprintf
                     "promotion: crash_after=%d completed (%b) without crashing" i
                     ok)
            | exception Resilience.Diskchaos.Crashed _ -> ());
            Resilience.Diskchaos.uninstall ();
            let got = d1_file_bytes target in
            let valid =
              if pre_existing then
                String.equal got old_content || String.equal got new_content
              else String.equal got "<absent>" || String.equal got new_content
            in
            if not valid then
              violation
                (Printf.sprintf
                   "promotion: crash at write point %d (old %s) left a torn \
                    target: %S"
                   i
                   (if pre_existing then "present" else "absent")
                   got);
            if not (Resilience.Store.write_atomic target new_content) then
              violation
                (Printf.sprintf
                   "promotion: fault-off retry after crash point %d failed" i)
            else if not (String.equal (d1_file_bytes target) new_content) then
              violation
                (Printf.sprintf
                   "promotion: retry after crash point %d left stale content" i)
          done)
        [ true; false ];
      Printf.printf
        "  promotion crashes: %d point(s) x {old present, old absent}: target \
         always whole, retry always converged\n"
        w)

(* Fault-off identity: a run with the zero-rate config installed must
   leave byte-identical files to one with nothing installed — arming the
   chaos layer without faults costs determinism nothing. *)
let d1_identity ~violation kind =
  let dir_bytes dir =
    String.concat ""
      (List.map
         (fun f -> f ^ "=" ^ d1_file_bytes (Filename.concat dir f))
         (List.sort compare (Array.to_list (Sys.readdir dir))))
  in
  let run armed =
    let dir = d1_tmp_dir () in
    Fun.protect
      ~finally:(fun () ->
        Resilience.Diskchaos.uninstall ();
        d1_rm_rf dir)
      (fun () ->
        if armed then
          Resilience.Diskchaos.install (Resilience.Diskchaos.make ~seed:7 ());
        kind.d_prefix ~dir ~k:kind.d_script_len;
        Resilience.Diskchaos.uninstall ();
        dir_bytes dir)
  in
  if not (String.equal (run false) (run true)) then
    violation
      (Printf.sprintf "%s: zero-rate armed run not byte-identical to an unarmed one"
         kind.d_name)

let table_d1 () =
  section "D1 — durability gate: crash at every write point, recover";
  let violations = ref [] in
  let violation s = violations := s :: !violations in
  let n = if smoke then 3 else 6 in
  let kinds = [ d1_journal_kind n; d1_ledger_kind n; d1_triage_kind n ] in
  let rows =
    List.map
      (fun kind ->
        let w, recovered, resumed = d1_drill ~violation kind in
        d1_identity ~violation kind;
        [
          kind.d_name;
          string_of_int kind.d_script_len;
          string_of_int w;
          Printf.sprintf "%d/%d" recovered w;
          Printf.sprintf "%d/%d" resumed w;
        ])
      kinds
  in
  print_string
    (Cosynth.Report.table
       ~title:
         "scripted records, write points W, crash points recovered to a clean \
          prefix, fault-off resumes converged"
       ~header:[ "store"; "records"; "W"; "prefix recovery"; "resume" ]
       rows);
  d1_promotion ~violation ();
  d1_corruption_sweep ~violation ();
  Printf.printf "  corrupt lines skipped and counted so far: %d\n"
    (Resilience.Store.corrupt_seen ());
  match List.rev !violations with
  | [] -> Printf.printf "\n  D1: every crash recovered, every corruption contained\n"
  | vs ->
      Printf.printf "\n  D1 GATE FAILED: %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) vs;
      exit 1

let () =
  Printf.printf
    "CoSynth benchmark harness — reproduction of 'What do LLMs need to Synthesize \
     Correct Router Configurations?' (HotNets 2023)\n";
  Printf.printf "mode: %s | worker pool: %d domain(s) (COSYNTH_POOL_SIZE to override)\n"
    (if fuzz_only then
       if smoke then "fuzz gate (smoke budget)" else "fuzz gate (full budget)"
     else if adversary_only then
       if smoke then "adversary gate (smoke budget)" else "adversary gate (full budget)"
     else if adversary_verifier_only then
       if smoke then "adversary verifier gate (smoke budget)"
       else "adversary verifier gate (full budget)"
     else if adversary_collusion_only then
       if smoke then "adversary collusion gate (smoke budget)"
       else "adversary collusion gate (full budget)"
     else if serve_only then
       if smoke then "serve gate (smoke budget)" else "serve gate (full budget)"
     else if serve_overload_only then
       if smoke then "serve overload gate (smoke budget)"
       else "serve overload gate (full budget)"
     else if durable_only then
       if smoke then "durability gate (smoke budget)"
       else "durability gate (full budget)"
     else if chaos_only then "chaos sweep only (full seeds)"
     else if smoke then "smoke (1 seed per experiment)"
     else "full")
    (Exec.Pool.size pool);
  if fuzz_only then begin
    table_f1 ();
    Exec.Pool.shutdown pool;
    Printf.printf "\nDone.\n";
    exit 0
  end;
  if adversary_only then begin
    table_a1 ();
    Exec.Pool.shutdown pool;
    Printf.printf "\nDone.\n";
    exit 0
  end;
  if adversary_verifier_only then begin
    table_a2 ();
    Exec.Pool.shutdown pool;
    Printf.printf "\nDone.\n";
    exit 0
  end;
  if adversary_collusion_only then begin
    table_a3 ();
    Exec.Pool.shutdown pool;
    Printf.printf "\nDone.\n";
    exit 0
  end;
  if serve_only then begin
    table_s1 ();
    Exec.Pool.shutdown pool;
    Printf.printf "\nDone.\n";
    exit 0
  end;
  if serve_overload_only then begin
    table_s2 ();
    Exec.Pool.shutdown pool;
    Printf.printf "\nDone.\n";
    exit 0
  end;
  if durable_only then begin
    table_d1 ();
    Exec.Pool.shutdown pool;
    Printf.printf "\nDone.\n";
    exit 0
  end;
  if chaos_only then begin
    table_c1 ();
    table_c2 ();
    Exec.Pool.shutdown pool;
    Printf.printf "\nDone.\n";
    exit 0
  end;
  table_t1 ();
  table_t2 ();
  table_l1 ();
  figure_f4 ();
  table_t3 ();
  table_l2 ();
  table_g1 ();
  table_ab1a ();
  table_ab1b ();
  table_ab1c ();
  table_e1 ();
  table_e2 ();
  table_e3 ();
  table_c1 ();
  table_c2 ();
  table_s1 ();
  table_s2 ();
  if smoke then
    Printf.printf "\n(smoke mode: skipping the Bechamel performance pass)\n"
  else run_perf ();
  let ps = Exec.Pool.stats pool in
  let ms = Exec.Memo.stats () in
  Printf.printf
    "\npool: %d domain(s), %d jobs, %.1fs busy over %.1fs wall (utilization %.0f%%), \
     %d worker restart(s)\n"
    ps.Exec.Pool.domains ps.Exec.Pool.jobs_completed ps.Exec.Pool.busy_s
    ps.Exec.Pool.wall_s
    (100. *. Exec.Pool.utilization ps)
    ps.Exec.Pool.restarts;
  Printf.printf "memo: %d hits / %d misses since last reset, %d entries cached\n"
    ms.Exec.Memo.hits ms.Exec.Memo.misses ms.Exec.Memo.entries;
  Exec.Pool.shutdown pool;
  Printf.printf "\nDone.\n"
