(* Leverage sweeps: how the auto/human prompt ratio responds to the knobs
   the paper discusses — the IIP database, network size, and how patient
   the automated loop is before punting to the human.

   The seeded runs are independent, so they fan out across an Exec.Pool
   (size from COSYNTH_POOL_SIZE or the machine); results are bit-identical
   to a sequential sweep, just faster on multi-core hardware.

   Run with: dune exec examples/leverage_sweep.exe *)

let () =
  let cisco_text = Cisco.Samples.border_router in
  let pool = Exec.Pool.create () in
  Printf.printf "(worker pool: %d domain(s))\n\n" (Exec.Pool.size pool);

  print_endline "== Translation leverage across 20 seeds ==";
  let s, wall =
    Exec.Sweep.timed (fun () ->
        Cosynth.Metrics.translation_summary ~runs:20 ~pool ~cisco_text ())
  in
  Format.printf "  %a@." Cosynth.Metrics.pp_summary s;
  Printf.printf "  (%.2fs wall)\n" wall;

  print_endline "\n== No-transit leverage vs star size ==";
  List.iter
    (fun routers ->
      let s = Cosynth.Metrics.no_transit_summary ~runs:10 ~pool ~routers () in
      Printf.printf "  %2d routers: auto %.1f human %.1f leverage %.1fx\n" routers
        s.Cosynth.Metrics.mean_auto s.Cosynth.Metrics.mean_human
        s.Cosynth.Metrics.mean_leverage)
    [ 3; 5; 7; 9 ];

  print_endline "\n== With vs without the IIP database (7 routers) ==";
  List.iter
    (fun use_iips ->
      let s = Cosynth.Metrics.no_transit_summary ~runs:10 ~routers:7 ~use_iips ~pool () in
      Printf.printf "  iips=%-5b auto %.1f human %.1f leverage %.1fx\n" use_iips
        s.Cosynth.Metrics.mean_auto s.Cosynth.Metrics.mean_human
        s.Cosynth.Metrics.mean_leverage)
    [ true; false ];

  print_endline "\n== Translation: stall threshold (auto attempts before punting) ==";
  List.iter
    (fun stall_threshold ->
      let transcripts =
        Exec.Sweep.run_seeds ~pool ~seeds:(Exec.Sweep.seeds ~base:9000 ~n:10)
          (fun seed ->
            (Cosynth.Driver.run_translation ~seed ~stall_threshold ~cisco_text ())
              .Cosynth.Driver.transcript)
      in
      let s = Cosynth.Metrics.summarize transcripts in
      Printf.printf "  threshold %d: auto %.1f human %.1f leverage %.1fx\n" stall_threshold
        s.Cosynth.Metrics.mean_auto s.Cosynth.Metrics.mean_human
        s.Cosynth.Metrics.mean_leverage)
    [ 1; 2; 4; 6 ];

  let ms = Exec.Memo.stats () in
  Printf.printf "\n(verifier memo: %d hits / %d misses, %.0f%% hit rate)\n"
    ms.Exec.Memo.hits ms.Exec.Memo.misses
    (100. *. Exec.Memo.hit_rate ms);
  Exec.Pool.shutdown pool
