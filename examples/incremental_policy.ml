(* The paper's closing question, answered: "Can GPT-4 add a new policy
   incrementally without interfering with existing verified policy?"

   Starting from the verified no-transit star, the hub is asked to prepend
   the AS path on routes exported to ISP R2. The simulated LLM sometimes
   inserts the new term *before* the verified deny stanzas — silently
   breaking no-transit — and the same local specs that verified the original
   configuration catch the interference and drive the repair.

   Run with: dune exec examples/incremental_policy.exe *)

open Policy

let shorten s =
  let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  if String.length s > 110 then String.sub s 0 107 ^ "..." else s

let () =
  let star = Netcore.Star.make ~routers:7 in
  let task = Cosynth.Modularizer.prepend_task star ~target:"R2" ~prepend:[ 1; 1 ] in

  print_endline "=== The incremental task prompt ===";
  print_string task.Cosynth.Modularizer.prompt;
  Printf.printf "\n(verifier carries %d specs: the original ones plus the new prepend requirement)\n"
    (List.length task.Cosynth.Modularizer.specs);

  (* Find a seed where the interference actually happens, to show the story. *)
  let interesting =
    let rec search i =
      if i > 60 then Cosynth.Driver.run_incremental ~seed:1 ~routers:7 ()
      else
        let r = Cosynth.Driver.run_incremental ~seed:(i * 31) ~routers:7 () in
        if r.Cosynth.Driver.interference_caught then r else search (i + 1)
    in
    search 1
  in
  print_endline "\n=== A run where the edit interfered with the verified policy ===";
  List.iter
    (fun (e : Cosynth.Driver.event) ->
      let tag =
        match e.Cosynth.Driver.origin with
        | Cosynth.Driver.Auto -> "auto "
        | Cosynth.Driver.Human -> "HUMAN"
        | Cosynth.Driver.Degraded -> "degrd"
        | Cosynth.Driver.Stalled -> "stall"
        | Cosynth.Driver.Crosscheck -> "xchck"
      in
      Printf.printf "[%s] %s\n" tag (shorten e.Cosynth.Driver.prompt))
    interesting.Cosynth.Driver.inc_transcript.Cosynth.Driver.events;
  Printf.printf
    "\ninterference caught by the verifier: %b; repaired and re-verified: %b; \
     no-transit still holds network-wide: %b\n"
    interesting.Cosynth.Driver.interference_caught
    interesting.Cosynth.Driver.specs_hold interesting.Cosynth.Driver.global_ok;

  print_endline "\n=== The final egress policy toward R2 ===";
  (match
     Config_ir.find_route_map interesting.Cosynth.Driver.hub_config
       (Cosynth.Modularizer.egress_map_name "R2")
   with
  | Some m -> print_endline (Cisco.Printer.print_route_map m)
  | None -> print_endline "(missing)");

  print_endline "\n=== 25 seeds ===";
  let results =
    List.init 25 (fun i -> Cosynth.Driver.run_incremental ~seed:(i * 31) ~routers:7 ())
  in
  let count f = List.length (List.filter f results) in
  Printf.printf
    "converged: %d/25; runs where the verifier caught interference with the \
     existing policy: %d/25\n"
    (count (fun r -> r.Cosynth.Driver.global_ok))
    (count (fun r -> r.Cosynth.Driver.interference_caught))
