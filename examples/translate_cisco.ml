(* Use case 1 (Section 3): translating a Cisco configuration to Juniper with
   Verified Prompt Programming.

   This walks one full loop with the Table 2 error set pinned, printing every
   humanized prompt as it is fed back to the (simulated) LLM, then the final
   verified Juniper configuration.

   Run with: dune exec examples/translate_cisco.exe *)

let shorten s =
  let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  if String.length s > 110 then String.sub s 0 107 ^ "..." else s

let () =
  let cisco_text = Cisco.Samples.border_router in
  print_endline "=== Original Cisco configuration ===";
  print_string cisco_text;

  let faults = Cosynth.Driver.table2_faults ~cisco_text in
  Printf.printf "\n=== Injected GPT-4 error set (Table 2) ===\n";
  List.iter (fun f -> Printf.printf "  %s\n" (Llmsim.Fault.to_string f)) faults;

  let r =
    Cosynth.Driver.run_translation ~seed:7 ~force_faults:faults ~suppress_random:true
      ~cisco_text ()
  in

  print_endline "\n=== Conversation transcript ===";
  List.iter
    (fun (e : Cosynth.Driver.event) ->
      let tag =
        match e.Cosynth.Driver.origin with
        | Cosynth.Driver.Auto -> "auto "
        | Cosynth.Driver.Human -> "HUMAN"
        | Cosynth.Driver.Degraded -> "degrd"
        | Cosynth.Driver.Stalled -> "stall"
        | Cosynth.Driver.Crosscheck -> "xchck"
      in
      Printf.printf "[%s] %s\n" tag (shorten e.Cosynth.Driver.prompt))
    r.Cosynth.Driver.transcript.Cosynth.Driver.events;

  Printf.printf "\n=== Outcome ===\n";
  Printf.printf "verified: %b\n" r.Cosynth.Driver.verified;
  Printf.printf "automated prompts: %d, human prompts: %d, leverage: %.1fx\n"
    r.Cosynth.Driver.transcript.Cosynth.Driver.auto_prompts
    r.Cosynth.Driver.transcript.Cosynth.Driver.human_prompts
    (Cosynth.Driver.leverage r.Cosynth.Driver.transcript);

  print_endline "\n=== Per-class outcomes (Table 2) ===";
  List.iter
    (fun (o : Cosynth.Driver.class_outcome) ->
      match Llmsim.Error_class.table2_label o.Cosynth.Driver.class_ with
      | Some label ->
          Printf.printf "  %-42s fixed by generated prompt: %s\n" label
            (if o.Cosynth.Driver.fixed_by_generated_prompt then "Yes" else "No")
      | None -> ())
    r.Cosynth.Driver.outcomes;

  print_endline "\n=== Final verified Juniper configuration ===";
  print_string r.Cosynth.Driver.final_text
