(* Use case 2 (Section 4): implementing the no-transit policy on a 7-router
   star network via local synthesis.

   Shows the modularizer's outputs (topology prompt, local policies), runs
   the per-router VPP loops, and finishes with the whole-network BGP
   simulation that checks the global policy.

   Run with: dune exec examples/no_transit.exe *)

open Netcore

let shorten s =
  let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  if String.length s > 110 then String.sub s 0 107 ^ "..." else s

let () =
  let star = Star.make ~routers:7 in

  print_endline "=== Network generator output 1: textual description ===";
  print_string (Star.description star);

  print_endline "\n=== Network generator output 2: JSON dictionary (excerpt) ===";
  let json = Json.to_string ~pretty:true (Star.to_json star) in
  let lines = String.split_on_char '\n' json in
  List.iteri (fun i l -> if i < 15 then print_endline l) lines;
  Printf.printf "... (%d lines)\n" (List.length lines);

  print_endline "\n=== Modularizer: the hub's local policy prompt ===";
  let plan = Cosynth.Modularizer.plan star in
  let hub = List.hd plan in
  print_string hub.Cosynth.Modularizer.prompt;
  Printf.printf "\n(%d local policy specs for the semantic verifier)\n"
    (List.length hub.Cosynth.Modularizer.specs);

  print_endline "\n=== Initial Instruction Prompts ===";
  print_endline (Cosynth.Iip.render Cosynth.Iip.defaults);

  print_endline "\n=== Running the VPP loop ===";
  let r = Cosynth.Driver.run_no_transit ~seed:3 ~routers:7 () in
  List.iter
    (fun (e : Cosynth.Driver.event) ->
      let tag =
        match e.Cosynth.Driver.origin with
        | Cosynth.Driver.Auto -> "auto "
        | Cosynth.Driver.Human -> "HUMAN"
        | Cosynth.Driver.Degraded -> "degrd"
        | Cosynth.Driver.Stalled -> "stall"
        | Cosynth.Driver.Crosscheck -> "xchck"
      in
      Printf.printf "[%s] (%s) %s\n" tag e.Cosynth.Driver.note (shorten e.Cosynth.Driver.prompt))
    r.Cosynth.Driver.transcript.Cosynth.Driver.events;

  Printf.printf "\nper-router verification:\n";
  List.iter
    (fun (name, ok) -> Printf.printf "  %s: %s\n" name (if ok then "verified" else "FAILED"))
    r.Cosynth.Driver.per_router_verified;

  Printf.printf "\nglobal BGP simulation: no-transit %s\n"
    (if r.Cosynth.Driver.global_ok then "HOLDS" else "VIOLATED");
  List.iter (fun v -> Printf.printf "  violation: %s\n" v) r.Cosynth.Driver.global_violations;

  Printf.printf "\nprompts: %d automated, %d human; leverage %.1fx (paper: 6x)\n"
    r.Cosynth.Driver.transcript.Cosynth.Driver.auto_prompts
    r.Cosynth.Driver.transcript.Cosynth.Driver.human_prompts
    (Cosynth.Driver.leverage r.Cosynth.Driver.transcript);

  (* Show the converged routing state from the final configs. *)
  print_endline "\n=== Converged RIB of ISP router R2 (from the final configs) ===";
  let net = Cosynth.Modularizer.compose star r.Cosynth.Driver.configs in
  let ribs = Batfish.Bgp_sim.run net in
  List.iter
    (fun (e : Batfish.Bgp_sim.rib_entry) ->
      Printf.printf "  %s%s\n"
        (Route.to_string e.Batfish.Bgp_sim.route)
        (match e.Batfish.Bgp_sim.learned_from with
        | Some n -> " (via " ^ n ^ ")"
        | None -> " (local)"))
    (Batfish.Bgp_sim.rib ribs "R2");
  print_endline "\nNote: no other ISP's 10.x.0.0/24 network appears above."
