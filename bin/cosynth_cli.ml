(* The CoSynth command-line interface.

   Subcommands:
   - topology   generate the Figure-4 star network (text + JSON)
   - parse      run the Batfish-style syntax check on a config file
   - diff       run the Campion-style differ on an original and a translation
   - verify     run the topology verifier on a router's config
   - translate  run the translation VPP loop on a Cisco config
   - synth      run the no-transit VPP loop on an n-router star
   - leverage   multi-seed leverage summaries for both use cases
   - chaos      a seeded fault-injection sweep over either VPP loop *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let print_diags diags =
  List.iter (fun d -> Printf.printf "%s\n" (Netcore.Diag.to_string d)) diags

(* ------------------------------------------------------------------ *)
(* topology                                                            *)
(* ------------------------------------------------------------------ *)

let topology_cmd =
  let run n json =
    let star = Netcore.Star.make ~routers:n in
    if json then print_endline (Netcore.Json.to_string ~pretty:true (Netcore.Star.to_json star))
    else print_string (Netcore.Star.description star);
    0
  in
  let n =
    Arg.(value & opt int 7 & info [ "n"; "routers" ] ~docv:"N" ~doc:"Number of routers.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the JSON dictionary.") in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate the Figure-4 star network description")
    Term.(const run $ n $ json)

(* ------------------------------------------------------------------ *)
(* parse                                                               *)
(* ------------------------------------------------------------------ *)

let dialect_conv =
  let parse = function
    | "cisco" | "ios" -> Ok Batfish.Parse_check.Cisco_ios
    | "junos" | "juniper" -> Ok Batfish.Parse_check.Junos
    | s -> Error (`Msg (Printf.sprintf "unknown dialect %S (cisco|junos)" s))
  in
  let print ppf d = Format.pp_print_string ppf (Batfish.Parse_check.dialect_name d) in
  Arg.conv (parse, print)

let parse_cmd =
  let run dialect file =
    let _, diags = Batfish.Parse_check.check dialect (read_file file) in
    print_diags diags;
    if List.exists Netcore.Diag.is_error diags then 1 else 0
  in
  let dialect =
    Arg.(
      required
      & opt (some dialect_conv) None
      & info [ "d"; "dialect" ] ~docv:"DIALECT" ~doc:"cisco or junos.")
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "parse" ~doc:"Syntax-check a configuration (Batfish-style)")
    Term.(const run $ dialect $ file)

(* ------------------------------------------------------------------ *)
(* diff                                                                *)
(* ------------------------------------------------------------------ *)

let diff_cmd =
  let run original translation =
    let orig_ir, d1 = Cisco.Parser.parse (read_file original) in
    let trans_ir, d2 = Juniper.Parser.parse (read_file translation) in
    print_diags (List.filter Netcore.Diag.is_error (d1 @ d2));
    let findings = Campion.Differ.compare ~original:orig_ir ~translation:trans_ir in
    if findings = [] then (
      print_endline "No differences found.";
      0)
    else (
      List.iter
        (fun f -> Printf.printf "- %s\n" (Campion.Differ.finding_to_string f))
        findings;
      1)
  in
  let original =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CISCO_ORIGINAL")
  in
  let translation =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"JUNOS_TRANSLATION")
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Compare a Cisco original with a Juniper translation (Campion-style)")
    Term.(const run $ original $ translation)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let run topo_file router config_file =
    let json = Netcore.Json.of_string_exn (read_file topo_file) in
    let ir, diags = Cisco.Parser.parse (read_file config_file) in
    print_diags (List.filter Netcore.Diag.is_error diags);
    match Topoverify.Verifier.check_from_json json ~router ir with
    | Error e ->
        prerr_endline e;
        2
    | Ok [] ->
        print_endline "Configuration matches the topology.";
        0
    | Ok findings ->
        List.iter
          (fun f -> Printf.printf "- %s\n" f.Topoverify.Verifier.message)
          findings;
        1
  in
  let topo =
    Arg.(
      required
      & opt (some file) None
      & info [ "t"; "topology" ] ~docv:"JSON" ~doc:"Topology dictionary (JSON).")
  in
  let router =
    Arg.(
      required
      & opt (some string) None
      & info [ "r"; "router" ] ~docv:"NAME" ~doc:"Router name in the topology.")
  in
  let config = Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG") in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check a Cisco config against a JSON topology dictionary")
    Term.(const run $ topo $ router $ config)

(* ------------------------------------------------------------------ *)
(* translate                                                           *)
(* ------------------------------------------------------------------ *)

let print_transcript (t : Cosynth.Driver.transcript) verbose =
  if verbose then
    List.iter
      (fun (e : Cosynth.Driver.event) ->
        let tag =
          match e.Cosynth.Driver.origin with
          | Cosynth.Driver.Auto -> "auto "
          | Cosynth.Driver.Human -> "HUMAN"
          | Cosynth.Driver.Degraded -> "degrd"
          | Cosynth.Driver.Stalled -> "STALL"
          | Cosynth.Driver.Crosscheck -> "XCHCK"
        in
        let text = e.Cosynth.Driver.prompt in
        let text =
          if String.length text > 120 then String.sub text 0 117 ^ "..." else text
        in
        Printf.printf "[%s] %s\n" tag (String.map (fun c -> if c = '\n' then ' ' else c) text))
      t.Cosynth.Driver.events;
  Printf.printf
    "\nprompts: %d automated, %d human; leverage %.1fx; converged: %b\n"
    t.Cosynth.Driver.auto_prompts t.Cosynth.Driver.human_prompts
    (Cosynth.Driver.leverage t) t.Cosynth.Driver.converged;
  match t.Cosynth.Driver.certificate with
  | None -> ()
  | Some c ->
      Printf.printf "certificate: %s\n" (Cosynth.Driver.certificate_to_string c)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let translate_cmd =
  let run file seed verbose show_config transcript_out =
    let cisco_text = match file with Some f -> read_file f | None -> Cisco.Samples.border_router in
    let r = Cosynth.Driver.run_translation ~seed ~cisco_text () in
    print_transcript r.Cosynth.Driver.transcript verbose;
    Printf.printf "verified: %b\n" r.Cosynth.Driver.verified;
    (match transcript_out with
    | Some path ->
        write_file path
          (Cosynth.Driver.transcript_to_markdown ~title:"Cisco to Juniper translation"
             r.Cosynth.Driver.transcript);
        Printf.printf "transcript written to %s\n" path
    | None -> ());
    if show_config then (
      print_endline "\n--- final Juniper configuration ---";
      print_string r.Cosynth.Driver.final_text);
    if r.Cosynth.Driver.verified then 0 else 1
  in
  let file =
    Arg.(
      value
      & pos 0 (some Arg.file) None
      & info [] ~docv:"CISCO_CONFIG" ~doc:"Defaults to the bundled border router.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every prompt.") in
  let show = Arg.(value & flag & info [ "show-config" ] ~doc:"Print the final config.") in
  let transcript_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "transcript" ] ~docv:"FILE" ~doc:"Write the conversation as markdown.")
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"Run the Cisco-to-Juniper translation VPP loop (use case 1)")
    Term.(const run $ file $ seed $ verbose $ show $ transcript_out)

(* ------------------------------------------------------------------ *)
(* synth                                                               *)
(* ------------------------------------------------------------------ *)

let synth_cmd =
  let run n seed no_iips verbose outdir prove =
    let final_check = if prove then Cosynth.Driver.Both else Cosynth.Driver.Simulate in
    let r =
      Cosynth.Driver.run_no_transit ~seed ~use_iips:(not no_iips) ~final_check ~routers:n ()
    in
    print_transcript r.Cosynth.Driver.transcript verbose;
    Printf.printf "global no-transit policy holds: %b\n" r.Cosynth.Driver.global_ok;
    (match r.Cosynth.Driver.proof with
    | Some Cosynth.Lightyear.Proved ->
        print_endline "modular proof: the local policies imply the global one"
    | Some (Cosynth.Lightyear.Refuted ref_) ->
        Printf.printf "modular proof REFUTED: %s -> %s\n" ref_.Cosynth.Lightyear.from_spoke
          ref_.Cosynth.Lightyear.to_spoke
    | Some (Cosynth.Lightyear.Inapplicable why) ->
        Printf.printf "modular proof inapplicable: %s\n" why
    | None -> ());
    List.iter (fun v -> Printf.printf "violation: %s\n" v) r.Cosynth.Driver.global_violations;
    (match outdir with
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (name, ir) ->
            let path = Filename.concat dir (name ^ ".cfg") in
            let oc = open_out path in
            output_string oc (Cisco.Printer.print ir);
            close_out oc;
            Printf.printf "wrote %s\n" path)
          r.Cosynth.Driver.configs
    | None -> ());
    if r.Cosynth.Driver.global_ok then 0 else 1
  in
  let n = Arg.(value & opt int 7 & info [ "n"; "routers" ] ~docv:"N") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let no_iips =
    Arg.(value & flag & info [ "no-iips" ] ~doc:"Disable the Initial Instruction Prompts.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every prompt.") in
  let outdir =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Write the final .cfg files here.")
  in
  let prove =
    Arg.(
      value & flag
      & info [ "prove" ]
          ~doc:"Also run the Lightyear-style modular proof as the global check.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Run the no-transit synthesis VPP loop (use case 2)")
    Term.(const run $ n $ seed $ no_iips $ verbose $ outdir $ prove)

(* ------------------------------------------------------------------ *)
(* sim                                                                 *)
(* ------------------------------------------------------------------ *)

let sim_cmd =
  let run topo_file dir router =
    let json = Netcore.Json.of_string_exn (read_file topo_file) in
    match Netcore.Topology.of_json json with
    | Error e ->
        prerr_endline e;
        2
    | Ok topology ->
        let configs =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".cfg")
          |> List.map (fun f ->
                 let name = Filename.chop_suffix f ".cfg" in
                 let ir, diags = Cisco.Parser.parse (read_file (Filename.concat dir f)) in
                 List.iter
                   (fun d ->
                     if Netcore.Diag.is_error d then
                       Printf.eprintf "%s: %s
" f (Netcore.Diag.to_string d))
                   diags;
                 (name, ir))
        in
        let ribs = Batfish.Bgp_sim.run { Batfish.Bgp_sim.topology; configs } in
        let show name =
          Printf.printf "== %s ==
" name;
          List.iter
            (fun (e : Batfish.Bgp_sim.rib_entry) ->
              Printf.printf "  %s%s
"
                (Netcore.Route.to_string e.Batfish.Bgp_sim.route)
                (match e.Batfish.Bgp_sim.learned_from with
                | Some n -> " (via " ^ n ^ ")"
                | None -> " (local)"))
            (Batfish.Bgp_sim.rib ribs name)
        in
        (match router with
        | Some r -> show r
        | None -> List.iter show (Batfish.Bgp_sim.routers ribs));
        0
  in
  let topo =
    Arg.(
      required
      & opt (some file) None
      & info [ "t"; "topology" ] ~docv:"JSON" ~doc:"Topology dictionary (JSON).")
  in
  let dir =
    Arg.(
      required
      & opt (some dir) None
      & info [ "c"; "configs" ] ~docv:"DIR" ~doc:"Directory of <router>.cfg files.")
  in
  let router =
    Arg.(
      value
      & opt (some string) None
      & info [ "r"; "router" ] ~docv:"NAME" ~doc:"Show only this router's RIB.")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Simulate BGP over a topology and print converged RIBs")
    Term.(const run $ topo $ dir $ router)

(* ------------------------------------------------------------------ *)
(* prove                                                               *)
(* ------------------------------------------------------------------ *)

let prove_cmd =
  let run topo_file dir =
    let json = Netcore.Json.of_string_exn (read_file topo_file) in
    match Netcore.Topology.of_json json with
    | Error e ->
        prerr_endline e;
        2
    | Ok topology ->
        (* The proof applies to star networks following the generator's
           conventions: hub R1, spokes R2..Rn, customer network 10.0.0.0/24. *)
        let star =
          {
            Netcore.Star.topology;
            hub = "R1";
            spokes =
              List.filter_map
                (fun (r : Netcore.Topology.router) ->
                  if r.Netcore.Topology.name = "R1" then None
                  else Some r.Netcore.Topology.name)
                topology.Netcore.Topology.routers;
            customer_prefix = Netcore.Prefix.of_string_exn "10.0.0.0/24";
          }
        in
        let configs =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".cfg")
          |> List.map (fun f ->
                 ( Filename.chop_suffix f ".cfg",
                   fst (Cisco.Parser.parse (read_file (Filename.concat dir f))) ))
        in
        (match Cosynth.Lightyear.prove_no_transit star configs with
        | Cosynth.Lightyear.Proved ->
            print_endline "PROVED: the local policies imply the global no-transit policy.";
            0
        | Cosynth.Lightyear.Refuted r ->
            Printf.printf "REFUTED: a route from %s can reach %s%s
"
              r.Cosynth.Lightyear.from_spoke r.Cosynth.Lightyear.to_spoke
              (match r.Cosynth.Lightyear.example with
              | Some e -> Printf.sprintf " (e.g. %s)" (Netcore.Route.to_string e)
              | None -> "");
            1
        | Cosynth.Lightyear.Inapplicable why ->
            Printf.printf "INAPPLICABLE: %s
" why;
            2)
  in
  let topo =
    Arg.(
      required
      & opt (some file) None
      & info [ "t"; "topology" ] ~docv:"JSON" ~doc:"Star topology dictionary (JSON).")
  in
  let dir =
    Arg.(
      required
      & opt (some dir) None
      & info [ "c"; "configs" ] ~docv:"DIR" ~doc:"Directory of <router>.cfg files.")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Prove no-transit from the local policies (Lightyear-style, no simulation)")
    Term.(const run $ topo $ dir)

(* ------------------------------------------------------------------ *)
(* leverage                                                            *)
(* ------------------------------------------------------------------ *)

let verifier_stats_footer perf =
  let totals = Cosynth.Metrics.verifier_totals perf in
  Cosynth.Report.table ~title:"per-verifier resilience counters"
    ~header:Cosynth.Metrics.verifier_header
    (Cosynth.Metrics.verifier_rows perf)
    ~footer:
      [
        "total";
        string_of_int totals.Resilience.Stats.attempts;
        string_of_int totals.Resilience.Stats.retries;
        string_of_int totals.Resilience.Stats.failures;
        string_of_int totals.Resilience.Stats.breaker_trips;
        string_of_int totals.Resilience.Stats.degraded;
        string_of_int totals.Resilience.Stats.max_attempts;
      ]

(* ------------------------------------------------------------------ *)
(* shared sweep plumbing (chaos / shard / adversary)                   *)
(* ------------------------------------------------------------------ *)

(* The three seeded-sweep subcommands share the use-case vocabulary; only
   the default differs. *)
let use_case_conv ~default names =
  let c =
    Arg.conv
      ( (function
        | "translation" -> Ok `Translation
        | "no-transit" -> Ok `No_transit
        | "incremental" -> Ok `Incremental
        | s -> Error (`Msg (Printf.sprintf "unknown use case %S" s))),
        fun ppf c -> Format.pp_print_string ppf (match c with
          | `Translation -> "translation"
          | `No_transit -> "no-transit"
          | `Incremental -> "incremental") )
  in
  Arg.(
    value & opt c default
    & info names ~docv:"CASE" ~doc:"translation, no-transit or incremental.")

let use_case_name = function
  | `Translation -> "translation"
  | `No_transit -> "no-transit"
  | `Incremental -> "incremental"

(* The driver defaults; the invariant under any schedule is that the
   merged transcript stays within them and the loop never raises. *)
let use_case_budget = function
  | `Translation -> 200
  | `No_transit -> 400
  | `Incremental -> 100

let degraded_rounds (t : Cosynth.Driver.transcript) =
  List.length
    (List.filter
       (fun (e : Cosynth.Driver.event) ->
         e.Cosynth.Driver.origin = Cosynth.Driver.Degraded)
       t.Cosynth.Driver.events)

(* The chaos-sweep journal codec keeps the summary-relevant projection of
   each outcome. A replayed transcript gets placeholder [Degraded] events
   so the degraded-rounds line reproduces exactly; everything else the
   summary table reads is carried verbatim. Shared by `cosynth chaos`
   (which writes and resumes journals) and `cosynth shard` (whose
   coordinator decodes the merged per-shard journals to reprint the same
   summary block a sequential sweep prints). *)
let chaos_encode (o : Cosynth.Driver.transcript Exec.Supervisor.outcome) =
  match o with
  | Exec.Supervisor.Completed t ->
      Netcore.Json.Obj
        ([
           ("ok", Netcore.Json.Bool true);
           ("auto", Netcore.Json.Int t.Cosynth.Driver.auto_prompts);
           ("human", Netcore.Json.Int t.Cosynth.Driver.human_prompts);
           ("converged", Netcore.Json.Bool t.Cosynth.Driver.converged);
           ("rounds", Netcore.Json.Int t.Cosynth.Driver.rounds);
           ("degraded", Netcore.Json.Int (degraded_rounds t));
         ]
        @
        (* Hardened (lie-armed) chaos runs carry a convergence certificate
           the summary's stalled/oscillating counts read; round-trip it so
           a resumed sweep reprints identically. Lie-free runs have none
           and their journal lines keep the exact pre-certificate shape. *)
        match t.Cosynth.Driver.certificate with
        | None -> []
        | Some c ->
            [
              ( "certificate",
                Netcore.Json.Obj
                  (match c with
                  | Cosynth.Driver.Converged ->
                      [ ("kind", Netcore.Json.String "converged") ]
                  | Cosynth.Driver.Stalled_out reason ->
                      [
                        ("kind", Netcore.Json.String "stalled");
                        ("reason", Netcore.Json.String reason);
                      ]
                  | Cosynth.Driver.Oscillating period ->
                      [
                        ("kind", Netcore.Json.String "oscillating");
                        ("period", Netcore.Json.Int period);
                      ]) );
            ])
  | Exec.Supervisor.Abandoned { attempts; reason } ->
      Netcore.Json.Obj
        [
          ("ok", Netcore.Json.Bool false);
          ("attempts", Netcore.Json.Int attempts);
          ("reason", Netcore.Json.String reason);
        ]

let chaos_decode json =
  let mem f name = Option.bind (Netcore.Json.member name json) f in
  match mem Netcore.Json.to_bool "ok" with
  | Some true -> (
      match
        ( mem Netcore.Json.to_int "auto",
          mem Netcore.Json.to_int "human",
          mem Netcore.Json.to_bool "converged",
          mem Netcore.Json.to_int "rounds",
          mem Netcore.Json.to_int "degraded" )
      with
      | Some auto, Some human, Some converged, Some rounds, Some degraded ->
          let certificate =
            Option.bind (Netcore.Json.member "certificate" json) (fun c ->
                let cmem f name = Option.bind (Netcore.Json.member name c) f in
                match cmem Netcore.Json.to_str "kind" with
                | Some "converged" -> Some Cosynth.Driver.Converged
                | Some "stalled" ->
                    Option.map
                      (fun r -> Cosynth.Driver.Stalled_out r)
                      (cmem Netcore.Json.to_str "reason")
                | Some "oscillating" ->
                    Option.map
                      (fun p -> Cosynth.Driver.Oscillating p)
                      (cmem Netcore.Json.to_int "period")
                | _ -> None)
          in
          Some
            (Exec.Supervisor.Completed
               {
                 Cosynth.Driver.events =
                   List.init degraded (fun _ ->
                       {
                         Cosynth.Driver.origin = Cosynth.Driver.Degraded;
                         prompt = "(replayed from journal)";
                         note = "degraded";
                       });
                 human_prompts = human;
                 auto_prompts = auto;
                 converged;
                 rounds;
                 certificate;
               })
      | _ -> None)
  | Some false -> (
      match
        (mem Netcore.Json.to_int "attempts", mem Netcore.Json.to_str "reason")
      with
      | Some attempts, Some reason ->
          Some (Exec.Supervisor.Abandoned { attempts; reason })
      | _ -> None)
  | None -> None

(* Print the block a chaos-style sweep ends with — fault schedule, leverage
   summary, degraded-round count, abandoned seeds — and return the budget
   violations in seed order. `cosynth shard` reprints this from the merged
   journals, so its stdout is byte-comparable to the sequential sweep's. *)
let print_sweep_summary ~chaos ~budget seeded =
  let outcomes = List.map snd seeded in
  let transcripts = List.filter_map Exec.Supervisor.completed outcomes in
  let abandoned =
    List.filter_map
      (fun (s, o) ->
        match o with
        | Exec.Supervisor.Abandoned { attempts; reason } -> Some (s, attempts, reason)
        | Exec.Supervisor.Completed _ -> None)
      seeded
  in
  let violations =
    List.filter_map
      (fun (run_seed, o) ->
        match o with
        | Exec.Supervisor.Completed t ->
            let spent =
              t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts
            in
            if spent > budget then
              Some
                (Printf.sprintf "seed %d spent %d prompts (budget %d)" run_seed
                   spent budget)
            else None
        | Exec.Supervisor.Abandoned _ -> None)
      seeded
  in
  let degraded =
    List.fold_left (fun acc t -> acc + degraded_rounds t) 0 transcripts
  in
  Printf.printf "fault schedule: %s\n" (Resilience.Chaos.describe chaos);
  Format.printf "%a@." Cosynth.Metrics.pp_summary
    (Cosynth.Metrics.summarize transcripts);
  Printf.printf "degraded (hand-checked) verifier rounds: %d\n" degraded;
  List.iter
    (fun (run_seed, attempts, reason) ->
      Printf.printf "abandoned seed %d after %d attempt(s): %s\n" run_seed
        attempts reason)
    abandoned;
  violations

(* The trust and quorum summary lines a trust-armed sweep ends with,
   shared by `cosynth chaos`, `cosynth adversary` and the `cosynth shard`
   coordinator. With a persistent ledger the lines are replayed from its
   folded per-seed counter deltas — a killed-and-resumed sweep (or a
   sharded one read from merged worker ledgers) reprints the exact lines
   of an uninterrupted sequential run; otherwise the live process-global
   tallies serve. The quorum line is keyed on activity, so it appears only
   when cross-checks actually audited and every pre-quorum output shape is
   unchanged. *)
let print_trust_lines (d : Resilience.Trust.counters)
    (q : Resilience.Trust.quorum_counters) =
  Printf.printf "trust: checks=%d lies-detected=%d quarantines=%d restores=%d\n"
    d.Resilience.Trust.cross_checks d.Resilience.Trust.disagreements
    d.Resilience.Trust.quarantines d.Resilience.Trust.restores;
  if Resilience.Trust.quorum_active q then
    Printf.printf
      "quorum: audits=%d collusions-detected=%d outvoted=%d \
       oracle-quarantines=%d oracle-restores=%d\n"
      q.Resilience.Trust.audits q.Resilience.Trust.overruled
      q.Resilience.Trust.outvoted q.Resilience.Trust.oracle_quarantines
      q.Resilience.Trust.oracle_restores

let print_trust_summary ~trust_ledger ~trust_before ~quorum_before () =
  let d, q =
    match
      Option.join (Option.map Resilience.Trust.Ledger_store.load trust_ledger)
    with
    | Some e ->
        ( e.Resilience.Trust.Ledger_store.counters,
          e.Resilience.Trust.Ledger_store.quorum )
    | None ->
        ( Resilience.Trust.totals
            (Resilience.Trust.diff (Resilience.Trust.snapshot ()) trust_before),
          Resilience.Trust.diff_quorum
            (Resilience.Trust.quorum_snapshot ())
            quorum_before )
  in
  print_trust_lines d q

let leverage_cmd =
  let run use_case runs routers jobs =
    let pool = match jobs with Some d -> Exec.Pool.create ~domains:d () | None -> Exec.Pool.create () in
    (* The exception is trapped inside the measured thunk so the counter
       deltas survive an abort: a sweep that dies halfway still reports
       what its verifiers were doing when it died. *)
    let outcome, perf =
      Cosynth.Metrics.measure ~pool (fun () ->
          try
            Ok
              (match use_case with
              | `Translation ->
                  Cosynth.Metrics.translation_summary ~runs ~pool
                    ~cisco_text:Cisco.Samples.border_router ()
              | `No_transit -> Cosynth.Metrics.no_transit_summary ~runs ~routers ~pool ())
          with e -> Error e)
    in
    Exec.Pool.shutdown pool;
    match outcome with
    | Ok s ->
        Format.printf "%a@." Cosynth.Metrics.pp_summary s;
        Format.printf "%a@." Cosynth.Metrics.pp_perf perf;
        if s.Cosynth.Metrics.converged < s.Cosynth.Metrics.runs then 1 else 0
    | Error e ->
        Format.printf "%a@." Cosynth.Metrics.pp_perf perf;
        print_string (verifier_stats_footer perf);
        Printf.eprintf "error: sweep aborted: %s\n%!" (Printexc.to_string e);
        1
  in
  let use_case =
    let c =
      Arg.conv
        ( (function
          | "translation" -> Ok `Translation
          | "no-transit" -> Ok `No_transit
          | s -> Error (`Msg (Printf.sprintf "unknown use case %S" s))),
          fun ppf c ->
            Format.pp_print_string ppf
              (match c with `Translation -> "translation" | `No_transit -> "no-transit") )
    in
    Arg.(
      value
      & opt c `Translation
      & info [ "use-case" ] ~docv:"CASE" ~doc:"translation or no-transit.")
  in
  let runs = Arg.(value & opt int 20 & info [ "runs" ] ~docv:"N") in
  let routers = Arg.(value & opt int 7 & info [ "routers" ] ~docv:"N") in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the seeded sweep (default: COSYNTH_POOL_SIZE or the \
             machine; 0 = sequential). Results are identical at any setting.")
  in
  Cmd.v
    (Cmd.info "leverage"
       ~doc:"Multi-seed leverage summary (exits nonzero unless every run converged)")
    Term.(const run $ use_case $ runs $ routers $ jobs)

(* ------------------------------------------------------------------ *)
(* disk chaos (the shared --disk-* flags)                              *)
(* ------------------------------------------------------------------ *)

(* One cmdliner term shared by chaos/adversary/shard/serve: a seeded
   Diskchaos configuration consulted by every Durable.Store write the
   run makes (journals, trust ledgers, triage, corpus promotion). All
   rates default to 0 — the all-zero configuration is never installed,
   so fault-free runs keep the exact fast path. *)
let disk_chaos_term =
  let rate name doc = Arg.(value & opt float 0. & info [ name ] ~docv:"R" ~doc) in
  let short =
    rate "disk-short-rate"
      "Per-write probability of a detected short write: the store rolls \
       the file back and reports the record as not journaled (a resume \
       re-runs the seed)."
  in
  let torn =
    rate "disk-torn-rate"
      "Per-write probability of a silent torn write (the kernel claims \
       success): caught by the CRC frame at replay, skipped and counted, \
       never decoded."
  in
  let io_error = rate "disk-io-error-rate" "Per-write probability of EIO." in
  let enospc = rate "disk-enospc-rate" "Per-write probability of ENOSPC." in
  let fsync_fail =
    rate "disk-fsync-fail-rate"
      "Per-fsync probability the durability barrier fails: the record is \
       not counted as journaled; replay dedup absorbs the possible \
       duplicate line after the seed is re-run."
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "disk-seed" ] ~docv:"N"
          ~doc:
            "Seed for the disk fault streams (keyed on (seed, salt, path), \
             so two stores never share a stream and a re-run draws the \
             identical schedule).")
  in
  let crash_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "disk-crash-after" ] ~docv:"N"
          ~doc:
            "Simulated process death: the first $(docv) store operations \
             (writes, fsyncs, renames) succeed, the next one kills the \
             process with exit status 3 — the $(b,--halt-after) \
             convention — leaving a torn line for recovery to skip.")
  in
  Term.(
    const (fun short torn io_error enospc fsync_fail seed crash_after ->
        Resilience.Diskchaos.make ~short_rate:short ~torn_rate:torn
          ~io_error_rate:io_error ~enospc_rate:enospc
          ~fsync_fail_rate:fsync_fail ?crash_after ~seed ())
    $ short $ torn $ io_error $ enospc $ fsync_fail $ seed $ crash_after)

let disk_chaos_arm disk =
  if not (Resilience.Diskchaos.is_none disk) then begin
    Resilience.Diskchaos.install disk;
    Printf.eprintf "disk-chaos: armed: %s\n%!" (Resilience.Diskchaos.describe disk)
  end

(* Stderr-only: the stdout of a faulted run that still completes must stay
   byte-identical to the fault-free run (the durable-smoke drills cmp it). *)
let disk_chaos_footer disk =
  if not (Resilience.Diskchaos.is_none disk) then begin
    let s = Resilience.Diskchaos.stats () in
    Printf.eprintf
      "disk-chaos: %d op(s): %d short, %d torn, %d io-error, %d enospc, %d \
       fsync-fail\n\
       %!"
      s.Resilience.Diskchaos.ops s.Resilience.Diskchaos.shorts
      s.Resilience.Diskchaos.torn s.Resilience.Diskchaos.io_errors
      s.Resilience.Diskchaos.enospc s.Resilience.Diskchaos.fsync_failures
  end

(* The argv fragment reproducing a configuration in a child process (shard
   workers, the supervised serve daemon). *)
let disk_chaos_args (d : Resilience.Diskchaos.config) =
  let rate flag r =
    if r > 0. then [ flag; Printf.sprintf "%g" r ] else []
  in
  rate "--disk-short-rate" d.Resilience.Diskchaos.short_rate
  @ rate "--disk-torn-rate" d.Resilience.Diskchaos.torn_rate
  @ rate "--disk-io-error-rate" d.Resilience.Diskchaos.io_error_rate
  @ rate "--disk-enospc-rate" d.Resilience.Diskchaos.enospc_rate
  @ rate "--disk-fsync-fail-rate" d.Resilience.Diskchaos.fsync_fail_rate
  @ (if d.Resilience.Diskchaos.seed <> 0 then
       [ "--disk-seed"; string_of_int d.Resilience.Diskchaos.seed ]
     else [])
  @
  match d.Resilience.Diskchaos.crash_after with
  | Some n -> [ "--disk-crash-after"; string_of_int n ]
  | None -> []

(* An injected crash must end the process like a real one: exit 3, the
   kill/resume convention --halt-after established, after the Fun.protect
   finalizers on the way out have closed every journal handle. *)
let exit_on_disk_crash f =
  try f ()
  with Resilience.Diskchaos.Crashed what ->
    Printf.eprintf "disk-chaos: simulated crash during %s\n%!" what;
    exit 3

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let run use_case runs routers seed chaos_seed crash timeout flake truncate
      worker_loss worker_loss_in_flight lie_fn trust trust_ledger journal_path
      resume compact_journal halt_after triage_path disk verbose =
   exit_on_disk_crash @@ fun () ->
    if triage_path <> None then Resilience.Guard.reset ();
    disk_chaos_arm disk;
    if compact_journal && journal_path = None then begin
      (* Validated before the sweep runs: discovering a flag error only
         after a multi-hour sweep would be its own kind of fault. *)
      Printf.eprintf "error: --compact-journal requires --journal FILE\n%!";
      exit 2
    end;
    (* --trust-ledger implies --trust, and --trust with --journal needs the
       ledger to carry cross-check state across a resume — the same rules
       `cosynth adversary` enforces. Shard workers always journal, so a
       trust-armed shard sweep always rides on per-shard ledgers. *)
    let trust = trust || trust_ledger <> None in
    if trust && journal_path <> None && trust_ledger = None then begin
      Printf.eprintf
        "error: --trust cannot be combined with --journal (add --trust-ledger FILE \
         to persist cross-check state across resume)\n\
         %!";
      exit 2
    end;
    (* The fault streams are keyed on --chaos-seed (default: --seed) so a
       shard worker owning the slice starting at seed 57 can still draw the
       same schedule as the seed-42-based sequential sweep it is a slice
       of. *)
    let chaos =
      Resilience.Chaos.make ~crash_rate:crash ~timeout_rate:timeout
        ~flake_rate:flake ~truncate_rate:truncate ~worker_loss_rate:worker_loss
        ~seed:(Option.value chaos_seed ~default:seed)
        ()
    in
    let resilience = Resilience.Runtime.config ~chaos () in
    let plan =
      Resilience.Chaos.worker_plan ~in_flight:worker_loss_in_flight chaos ~salt:0
    in
    (* Lying verifiers under chaos: the lie stream is pinned to the same
       base seed as the fault streams, so a shard worker's slice draws the
       sequential sweep's schedule. A rate-0 spec is treated by the driver
       exactly like no spec, keeping lie-free sweeps byte-identical. *)
    let spec =
      Adversary.Spec.make
        ~verifier:
          (Adversary.Verifier.make ~false_negative:lie_fn
             ~seed:(Option.value chaos_seed ~default:seed)
             ())
        ()
    in
    let trust_cfg = if trust then Some Resilience.Trust.default_config else None in
    let trust_before = Resilience.Trust.snapshot () in
    let quorum_before = Resilience.Trust.quorum_snapshot () in
    let ledger_state =
      ref (Option.join (Option.map Resilience.Trust.Ledger_store.load trust_ledger))
    in
    let ledger_handle =
      Option.map
        (fun path ->
          (match !ledger_state with
          | None -> Printf.eprintf "trust-ledger: recording to %s\n%!" path
          | Some _ -> Printf.eprintf "trust-ledger: resuming trust state from %s\n%!" path);
          Resilience.Trust.Ledger_store.open_ ~truncate:false path)
        trust_ledger
    in
    let budget = use_case_budget use_case in
    (* Journal notices go to stderr: the stdout of a resumed sweep must be
       byte-identical to an uninterrupted one (make resume-smoke diffs it). *)
    let journal =
      match journal_path with
      | None ->
          if resume then begin
            Printf.eprintf "error: --resume requires --journal FILE\n%!";
            exit 2
          end;
          None
      | Some path ->
          let j =
            Exec.Sweep.journal ~resume ~path ~encode:chaos_encode
              ~decode:chaos_decode ()
          in
          (match Exec.Sweep.journaled_seeds j with
          | [] -> Printf.eprintf "journal: recording to %s\n%!" path
          | done_ ->
              Printf.eprintf "journal: resuming %d completed seed(s) from %s\n%!"
                (List.length done_) path);
          Some j
    in
    let seeds = List.init runs (fun i -> seed + i) in
    let fresh = ref 0 in
    let run_seed run_seed =
      (* Only fresh (non-journaled) seeds reach this function, so the halt
         counter measures exactly the runs this process contributed. *)
      (match halt_after with
      | Some n when !fresh >= n ->
          Printf.eprintf "journal: halting after %d fresh run(s) (simulated crash)\n%!" n;
          (* Every completed record is already fsync'd, but close anyway so
             even the simulated crash leaves no open handle behind. *)
          Option.iter Exec.Sweep.journal_close journal;
          Option.iter Resilience.Trust.Ledger_store.close ledger_handle;
          exit 3
      | _ -> ());
      incr fresh;
      (* Same per-seed ledger threading as `cosynth adversary`: each seed
         starts from the cumulative state (a quarantine earned by an
         earlier seed — or by the coordinator that seeded this worker's
         ledger — is already in force) and lands one fsync'd line with its
         evolved state plus this run's counter deltas. *)
      let ledger_t =
        Option.map
          (fun _ ->
            match !ledger_state with
            | Some e -> Resilience.Trust.create_from Resilience.Trust.default_config e
            | None -> Resilience.Trust.create Resilience.Trust.default_config)
          ledger_handle
      in
      let t0 = Resilience.Trust.snapshot () in
      let q0 = Resilience.Trust.quorum_snapshot () in
      let outcome =
        Exec.Supervisor.run_one ~plan ~index:run_seed (fun () ->
            match use_case with
            | `Translation ->
                (Cosynth.Driver.run_translation ~seed:run_seed ~resilience
                   ~adversary:spec ?trust:trust_cfg ?trust_ledger:ledger_t
                   ~cisco_text:Cisco.Samples.border_router ())
                  .Cosynth.Driver.transcript
            | `No_transit ->
                (Cosynth.Driver.run_no_transit ~seed:run_seed ~resilience
                   ~adversary:spec ?trust:trust_cfg ?trust_ledger:ledger_t
                   ~routers ())
                  .Cosynth.Driver.transcript
            | `Incremental ->
                (Cosynth.Driver.run_incremental ~seed:run_seed ~resilience
                   ~adversary:spec ?trust:trust_cfg ?trust_ledger:ledger_t
                   ~routers ())
                  .Cosynth.Driver.inc_transcript)
      in
      (match (outcome, ledger_t, ledger_handle) with
      | Exec.Supervisor.Completed _, Some t, Some h ->
          let counters =
            Resilience.Trust.totals
              (Resilience.Trust.diff (Resilience.Trust.snapshot ()) t0)
          in
          let quorum =
            Resilience.Trust.diff_quorum (Resilience.Trust.quorum_snapshot ()) q0
          in
          let e = Resilience.Trust.state_of t ~counters ~quorum in
          Resilience.Trust.Ledger_store.record h ~seed:run_seed e;
          ledger_state :=
            Some
              (match !ledger_state with
              | None -> e
              | Some a -> Resilience.Trust.Ledger_store.merge a e)
      | _ -> ());
      outcome
    in
    (* The abort trap lives inside the measured thunk so the per-verifier
       counter deltas survive: a sweep that dies halfway still reports what
       its verifiers were doing when it died. The journal is closed on the
       error path too, so the final record of an aborted sweep is never
       left in an unflushed channel. *)
    let (outcomes, aborted), perf =
      Fun.protect
        ~finally:(fun () ->
          Option.iter Exec.Sweep.journal_close journal;
          Option.iter Resilience.Trust.Ledger_store.close ledger_handle)
        (fun () ->
          Cosynth.Metrics.measure (fun () ->
              try (Exec.Sweep.run_seeds ?journal ~seeds run_seed, None)
              with
              (* A simulated disk crash is a process death, not a sweep
                 abort: let it reach the exit-3 handler (the protecting
                 finalizers close the journal and ledger on the way). *)
              | Resilience.Diskchaos.Crashed _ as c -> raise c
              | e -> ([], Some e)))
    in
    disk_chaos_footer disk;
    (match journal_path with
    | Some path when compact_journal ->
        let dropped, kept = Exec.Checkpoint.compact path in
        Printf.eprintf "journal: compacted %s (%d line(s) dropped, %d kept)\n%!"
          path dropped kept
    | Some _ | None -> ());
    let seeded = if outcomes = [] then [] else List.combine seeds outcomes in
    let violations = print_sweep_summary ~chaos ~budget seeded in
    if trust then print_trust_summary ~trust_ledger ~trust_before ~quorum_before ();
    if verbose || aborted <> None then print_string (verifier_stats_footer perf);
    (match triage_path with
    | Some path ->
        Resilience.Triage.record ~path ~seed ();
        Printf.printf "triage: %d crash bucket(s) appended to %s\n"
          (List.length (Resilience.Guard.crashes ()))
          path
    | None -> ());
    List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) violations;
    match aborted with
    | Some e ->
        Printf.eprintf "error: sweep aborted: %s\n%!" (Printexc.to_string e);
        1
    | None -> if violations <> [] then 1 else 0
  in
  let use_case = use_case_conv ~default:`No_transit [ "use-case" ] in
  let runs = Arg.(value & opt int 20 & info [ "runs" ] ~docv:"N") in
  let routers = Arg.(value & opt int 7 & info [ "routers" ] ~docv:"N") in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Chaos stream seed and sweep base seed; the sweep is exactly \
                reproducible from the seed and the rates.")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"N"
          ~doc:"Key the fault streams on $(docv) instead of $(b,--seed). A \
                shard worker sweeping a seed slice passes the coordinator's \
                base seed here so the sliced sweep draws exactly the \
                schedule of the equivalent sequential one.")
  in
  let rate name doc =
    Arg.(value & opt float 0. & info [ name ] ~docv:"R" ~doc)
  in
  let crash = rate "crash-rate" "Per-call crash probability (outage window, feeds the breaker)." in
  let timeout = rate "timeout-rate" "Per-call timeout probability (burns the round's tick budget)." in
  let flake = rate "flake-rate" "Per-call transient-failure probability (a retry may succeed)." in
  let truncate = rate "truncate-rate" "Per-call truncated-findings probability (discarded, never a pass)." in
  let worker_loss =
    rate "worker-loss-rate"
      "Per-dispatch probability that the worker domain running a seed dies; \
       the supervisor requeues the seed (bounded retries) and abandons it \
       when the budget is spent."
  in
  let worker_loss_in_flight =
    rate "worker-loss-in-flight"
      "Fraction of worker losses that strike mid-task instead of at \
       dispatch: the seed runs to completion but its result dies with the \
       domain, so the retry repeats work that already happened. Varying \
       this never changes which dispatches are lost."
  in
  let lie_fn =
    rate "lie-fn"
      "Per-check probability a verifier swallows its real findings (false \
       negative), on top of the chaos schedule; keyed on \
       $(b,--chaos-seed) so a shard worker draws the sequential sweep's \
       lie stream."
  in
  let trust =
    Arg.(
      value & flag
      & info [ "trust" ]
          ~doc:"Arm the cross-check trust ledger (see $(b,cosynth \
                adversary)). With $(b,--journal), requires \
                $(b,--trust-ledger).")
  in
  let trust_ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "trust-ledger" ] ~docv:"FILE"
          ~doc:"Persist the trust layer's state to $(docv), one fsync'd \
                JSON line per completed seed; an existing ledger — e.g. one \
                a shard coordinator pre-seeded — is loaded first, so \
                inherited quarantine is in force from the first run. \
                Implies $(b,--trust).")
  in
  let journal_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Record each completed seed to $(docv) (one fsync'd JSON line \
                per run). Without $(b,--resume) an existing file is \
                truncated.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Skip the seeds already recorded in $(b,--journal) and \
                reproduce the identical final table from the mix of \
                journaled and fresh runs.")
  in
  let compact_journal =
    Arg.(
      value & flag
      & info [ "compact-journal" ]
          ~doc:"After the sweep, rewrite $(b,--journal) keeping only the \
                surviving line per seed (retries and malformed lines \
                dropped) via an atomic temp-file rename.")
  in
  let halt_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "halt-after" ] ~docv:"N"
          ~doc:"Exit with status 3 (a simulated crash) once $(docv) fresh \
                runs have completed; used by $(b,make resume-smoke).")
  in
  let triage_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "triage" ] ~docv:"FILE"
          ~doc:"Append every Guard crash bucket from this sweep to $(docv) \
                (JSONL; read back with $(b,cosynth triage)). Resets the \
                in-process registry first so the rows cover this sweep only.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the per-verifier counter table.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault-injection sweep over a VPP loop: every run must terminate within \
          its prompt budget without an exception (exits nonzero otherwise)")
    Term.(
      const run $ use_case $ runs $ routers $ seed $ chaos_seed $ crash
      $ timeout $ flake $ truncate $ worker_loss $ worker_loss_in_flight
      $ lie_fn $ trust $ trust_ledger $ journal_path $ resume $ compact_journal
      $ halt_after $ triage_path $ disk_chaos_term $ verbose)

(* ------------------------------------------------------------------ *)
(* adversary                                                           *)
(* ------------------------------------------------------------------ *)

let adversary_cmd =
  let run use_case runs routers seed truncated wrong_dialect stale partial_fix
      off_topic dropped duplicated misattributed garbled lie_fn lie_fp lie_mutate
      lie_adaptive collude collude_oracle collude_rate trust trust_ledger
      journal_path resume halt_after sweep_budget triage_path disk verbose =
   exit_on_disk_crash @@ fun () ->
    Resilience.Guard.reset ();
    disk_chaos_arm disk;
    (* --trust-ledger implies --trust: a persisted ledger with the trust
       layer off would never change. *)
    let trust = trust || trust_ledger <> None in
    (* A budgeted sweep's per-seed allocations depend on what earlier seeds
       spent, while journal replay assumes a seed's run is a function of its
       seed alone — mixing them would replay records produced under
       different allocations. Refuse loudly rather than resume wrongly. *)
    (match (sweep_budget, journal_path) with
    | Some _, Some _ ->
        Printf.eprintf "error: --sweep-budget cannot be combined with --journal\n%!";
        exit 2
    | _ -> ());
    (* The same objection applies to the persistent trust ledger: budgeted
       allocations would be baked into the persisted trust trajectories. *)
    if sweep_budget <> None && trust_ledger <> None then begin
      Printf.eprintf "error: --sweep-budget cannot be combined with --trust-ledger\n%!";
      exit 2
    end;
    (* Cross-check counters are live process-global tallies: a resumed sweep
       replays journaled transcripts without re-running their cross-checks,
       so the trust summary could never match an uninterrupted run's —
       unless a --trust-ledger carries the per-seed counter deltas, in
       which case the summary is replayed from the ledger instead. *)
    if trust && journal_path <> None && trust_ledger = None then begin
      Printf.eprintf
        "error: --trust cannot be combined with --journal (add --trust-ledger FILE \
         to persist cross-check state across resume)\n\
         %!";
      exit 2
    end;
    let members =
      match collude with
      | None -> []
      | Some names ->
          List.map
            (fun name ->
              match Resilience.Verifier.kind_of_name (String.trim name) with
              | Some k -> k
              | None ->
                  Printf.eprintf
                    "error: --collude: unknown verifier kind %S (expected a comma-separated \
                     subset of: %s)\n\
                     %!"
                    name
                    (String.concat ", "
                       (List.map Resilience.Verifier.kind_name
                          Resilience.Verifier.all_kinds));
                  exit 2)
            (String.split_on_char ',' names)
    in
    let llm =
      Adversary.Llm.make ~truncated ~wrong_dialect ~stale ~partial_fix ~off_topic
        ~seed ()
    in
    let findings =
      Adversary.Findings.make ~dropped ~duplicated ~misattributed ~garbled ~seed ()
    in
    let verifier =
      Adversary.Verifier.make ~false_negative:lie_fn ~false_positive:lie_fp
        ~mutated:lie_mutate ~adaptive:lie_adaptive ~seed ()
    in
    let collusion =
      Adversary.Collusion.make ~members ~oracle:collude_oracle ~rate:collude_rate
        ~seed ()
    in
    let spec = Adversary.Spec.make ~llm ~findings ~verifier ~collusion () in
    let hardened = not (Adversary.Spec.is_none spec) in
    let trust_cfg = if trust then Some Resilience.Trust.default_config else None in
    let trust_before = Resilience.Trust.snapshot () in
    let quorum_before = Resilience.Trust.quorum_snapshot () in
    (* The persistent trust ledger: load whatever earlier campaigns left
       (quarantine survives kill/resume cycles), thread the cumulative
       state through the sweep sequentially, and record one fsync'd line
       per completed seed carrying the state plus that run's counter
       deltas. *)
    let ledger_state = ref (Option.join (Option.map Resilience.Trust.Ledger_store.load trust_ledger)) in
    let ledger_handle =
      Option.map
        (fun path ->
          (match !ledger_state with
          | None -> Printf.eprintf "trust-ledger: recording to %s\n%!" path
          | Some _ -> Printf.eprintf "trust-ledger: resuming trust state from %s\n%!" path);
          Resilience.Trust.Ledger_store.open_ ~truncate:false path)
        trust_ledger
    in
    (* The driver defaults; the invariant under any rates in [0, 1] is that
       every run stays within them, never raises, and carries a convergence
       certificate exactly when the spec is non-trivial. *)
    let budget = use_case_budget use_case in
    let seeds = List.init runs (fun i -> seed + i) in
    let violations = ref [] in
    let violation fmt =
      Printf.ksprintf (fun s -> violations := s :: !violations) fmt
    in
    (* One journal record per seed: the full transcript of a completed run
       (the Driver JSON codec round-trips every field, so the budget and
       certificate checks recompute identically on replay) or the crash
       string for a run the Guard caught (stored verbatim so a resumed
       sweep reprints the same violation). *)
    let encode = function
      | Ok t ->
          Netcore.Json.Obj
            [
              ("ok", Netcore.Json.Bool true);
              ("t", Cosynth.Driver.transcript_to_json t);
            ]
      | Error msg ->
          Netcore.Json.Obj
            [
              ("ok", Netcore.Json.Bool false);
              ("crash", Netcore.Json.String msg);
            ]
    in
    let decode json =
      let mem f name = Option.bind (Netcore.Json.member name json) f in
      match mem Netcore.Json.to_bool "ok" with
      | Some true ->
          Option.bind (Netcore.Json.member "t" json) (fun tj ->
              try Some (Ok (Cosynth.Driver.transcript_of_json tj))
              with _ -> None)
      | Some false -> Option.map (fun m -> Error m) (mem Netcore.Json.to_str "crash")
      | None -> None
    in
    (* Journal notices to stderr, same discipline as `cosynth chaos`: a
       resumed sweep's stdout must be byte-identical to an uninterrupted
       one. --resume without --journal is refused loudly — silently
       starting a fresh sweep would truncate nothing here, but it would
       quietly re-run every seed the caller believed was safe. *)
    let journal =
      match journal_path with
      | None ->
          if resume then begin
            Printf.eprintf "error: --resume requires --journal FILE\n%!";
            exit 2
          end;
          None
      | Some path ->
          let j = Exec.Sweep.journal ~resume ~path ~encode ~decode () in
          (match Exec.Sweep.journaled_seeds j with
          | [] -> Printf.eprintf "journal: recording to %s\n%!" path
          | done_ ->
              Printf.eprintf "journal: resuming %d completed seed(s) from %s\n%!"
                (List.length done_) path);
          Some j
    in
    let fresh = ref 0 in
    let run_seed ?max_prompts run_seed =
      (* Only fresh (non-journaled) seeds reach this function, so the halt
         counter measures exactly the runs this process contributed — same
         discipline as `cosynth chaos`. Both journals are fsync'd per
         record, but close anyway so even the simulated crash leaves no
         open handle behind. *)
      (match halt_after with
      | Some n when !fresh >= n ->
          Printf.eprintf "journal: halting after %d fresh run(s) (simulated crash)\n%!" n;
          Option.iter Exec.Sweep.journal_close journal;
          Option.iter Resilience.Trust.Ledger_store.close ledger_handle;
          exit 3
      | _ -> ());
      incr fresh;
      (* Under --trust-ledger each seed runs against a fresh instance seeded
         from the cumulative ledger state — quarantine earned by earlier
         seeds (this process or a killed predecessor) is already in force —
         and its evolved state plus this run's counter deltas land as one
         fsync'd ledger line before the run is reported complete. *)
      let ledger_t =
        Option.map
          (fun _ ->
            match !ledger_state with
            | Some e -> Resilience.Trust.create_from Resilience.Trust.default_config e
            | None -> Resilience.Trust.create Resilience.Trust.default_config)
          ledger_handle
      in
      let t0 = Resilience.Trust.snapshot () in
      let q0 = Resilience.Trust.quorum_snapshot () in
      let result =
        match
          Resilience.Guard.run ~label:"vpp-loop"
            ~fingerprint:(string_of_int run_seed) (fun () ->
              match use_case with
              | `Translation ->
                  (Cosynth.Driver.run_translation ~seed:run_seed ?max_prompts
                     ~adversary:spec ?trust:trust_cfg ?trust_ledger:ledger_t
                     ~cisco_text:Cisco.Samples.border_router ())
                    .Cosynth.Driver.transcript
              | `No_transit ->
                  (Cosynth.Driver.run_no_transit ~seed:run_seed ?max_prompts
                     ~adversary:spec ?trust:trust_cfg ?trust_ledger:ledger_t
                     ~routers ())
                    .Cosynth.Driver.transcript
              | `Incremental ->
                  (Cosynth.Driver.run_incremental ~seed:run_seed ?max_prompts
                     ~adversary:spec ?trust:trust_cfg ?trust_ledger:ledger_t
                     ~routers ())
                    .Cosynth.Driver.inc_transcript)
        with
        | Error c -> Error (Resilience.Guard.crash_to_string c)
        | Ok t -> Ok t
      in
      (match (result, ledger_t, ledger_handle) with
      | Ok _, Some t, Some h ->
          let counters =
            Resilience.Trust.totals
              (Resilience.Trust.diff (Resilience.Trust.snapshot ()) t0)
          in
          let quorum =
            Resilience.Trust.diff_quorum (Resilience.Trust.quorum_snapshot ()) q0
          in
          let e = Resilience.Trust.state_of t ~counters ~quorum in
          Resilience.Trust.Ledger_store.record h ~seed:run_seed e;
          ledger_state :=
            Some
              (match !ledger_state with
              | None -> e
              | Some a -> Resilience.Trust.Ledger_store.merge a e)
      | _ -> ());
      result
    in
    (* The journal is closed even when a seed's Guard boundary is breached
       by something unguardable — the finally runs on every exit path, so
       the last fsync'd record is never stranded in an open channel. *)
    let budget_stats = ref None in
    let recs =
      match sweep_budget with
      | Some total ->
          (* Certificate-aware scheduling: each seed gets a fair share of
             what's left; a run that stalls out ([Stalled_out] certificate —
             the watchdog or budget firing, not mere non-convergence) is
             abandoned at whatever it actually spent and the rest of its
             allocation flows to later seeds. A crash forfeits its whole
             allocation — there is no transcript to read a spend from. *)
          let out, stats =
            Exec.Sweep.run_seeds_budgeted ~budget:total ~seeds
              (fun ~seed:s ~max_prompts ->
                let r = run_seed ~max_prompts s in
                let outcome =
                  match r with
                  | Error _ ->
                      { Exec.Sweep.spent = max_prompts; abandoned = false }
                  | Ok t ->
                      {
                        Exec.Sweep.spent =
                          t.Cosynth.Driver.auto_prompts
                          + t.Cosynth.Driver.human_prompts;
                        abandoned =
                          (match t.Cosynth.Driver.certificate with
                          | Some (Cosynth.Driver.Stalled_out _) -> true
                          | _ -> false);
                      }
                in
                (r, outcome))
          in
          budget_stats := Some stats;
          out
      | None ->
          Fun.protect
            ~finally:(fun () ->
              Option.iter Exec.Sweep.journal_close journal;
              Option.iter Resilience.Trust.Ledger_store.close ledger_handle)
            (fun () ->
              Exec.Sweep.run_seeds ?journal ~seeds (fun s -> run_seed s))
    in
    let seeded =
      List.filter_map
        (fun (run_seed, r) ->
          match r with
          | Error msg ->
              violation "seed %d raised: %s" run_seed msg;
              None
          | Ok t ->
              let spent =
                t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts
              in
              (* Under --sweep-budget the per-seed cap is the dynamic
                 allocation, not the use-case budget; the total check below
                 covers the whole schedule instead. *)
              if sweep_budget = None && spent > budget then
                violation "seed %d spent %d prompts (budget %d)" run_seed spent
                  budget;
              (match (hardened, t.Cosynth.Driver.certificate) with
              | true, None -> violation "seed %d: no convergence certificate" run_seed
              | false, Some _ ->
                  violation "seed %d: rate-0 run carries a certificate" run_seed
              | _ -> ());
              Some (run_seed, t))
        (List.combine seeds recs)
    in
    let transcripts = List.map snd seeded in
    Printf.printf "adversary: %s\n" (Adversary.Spec.describe spec);
    Format.printf "%a@." Cosynth.Metrics.pp_summary
      (Cosynth.Metrics.summarize transcripts);
    if trust then print_trust_summary ~trust_ledger ~trust_before ~quorum_before ();
    if hardened then
      print_string
        (Cosynth.Report.counts ~title:"convergence certificates"
           (Cosynth.Metrics.certificates transcripts));
    (match !budget_stats with
    | Some (st : Exec.Sweep.budget_stats) ->
        let total_spent =
          List.fold_left
            (fun acc (_, (t : Cosynth.Driver.transcript)) ->
              acc + t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts)
            0 seeded
        in
        if total_spent > st.Exec.Sweep.budget then
          violation "sweep spent %d prompts (sweep budget %d)" total_spent
            st.Exec.Sweep.budget;
        print_string
          (Cosynth.Report.counts ~title:"budgeted schedule"
             [
               ("sweep budget", st.Exec.Sweep.budget);
               ("spent", st.Exec.Sweep.spent);
               ("abandoned early", st.Exec.Sweep.abandoned_early);
               ("reclaimed", st.Exec.Sweep.reclaimed);
             ])
    | None -> ());
    if verbose then
      List.iter
        (fun (run_seed, (t : Cosynth.Driver.transcript)) ->
          Printf.printf "  seed %d: %s\n" run_seed
            (match t.Cosynth.Driver.certificate with
            | Some c -> Cosynth.Driver.certificate_to_string c
            | None -> "(plain run)"))
        seeded;
    (match triage_path with
    | Some path ->
        Resilience.Triage.record ~path ~seed ();
        Printf.printf "triage: %d crash bucket(s) appended to %s\n"
          (List.length (Resilience.Guard.crashes ()))
          path
    | None -> ());
    disk_chaos_footer disk;
    List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev !violations);
    if !violations <> [] then 1 else 0
  in
  let use_case = use_case_conv ~default:`Translation [ "use-case" ] in
  let runs = Arg.(value & opt int 20 & info [ "runs" ] ~docv:"N") in
  let routers = Arg.(value & opt int 5 & info [ "routers" ] ~docv:"N") in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Adversary stream seed and sweep base seed; the sweep is \
                exactly reproducible from the seed and the rates.")
  in
  let rate name doc = Arg.(value & opt float 0. & info [ name ] ~docv:"R" ~doc) in
  let truncated = rate "truncated" "Per-draft probability of a truncated reply." in
  let wrong_dialect =
    rate "wrong-dialect" "Per-draft probability of rendering the other dialect."
  in
  let stale =
    rate "stale" "Per-response probability of ignoring the prompt (stale draft)."
  in
  let partial_fix =
    rate "partial-fix" "Per-response probability of applying only the first fix."
  in
  let off_topic = rate "off-topic" "Per-draft probability of prose filler." in
  let dropped = rate "dropped" "Per-finding probability of silently dropping it." in
  let duplicated = rate "duplicated" "Per-finding probability of double delivery." in
  let misattributed =
    rate "misattributed" "Per-finding probability of mis-attributed references."
  in
  let garbled = rate "garbled" "Per-finding probability of garbled text, refs lost." in
  let lie_fn =
    rate "lie-fn"
      "Per-check probability a verifier swallows its real findings (false \
       negative: the loop sees a fake clean pass)."
  in
  let lie_fp =
    rate "lie-fp"
      "Per-check probability a verifier fabricates a finding on a correct \
       draft (false positive)."
  in
  let lie_mutate =
    rate "lie-mutate"
      "Per-check probability a verifier misplaces a real finding (wrong \
       router/line/direction)."
  in
  let lie_adaptive =
    Arg.(
      value & flag
      & info [ "lie-adaptive" ]
          ~doc:"Escalate the lie rates as the loop nears convergence (seeded, \
                keyed off rounds since the last finding).")
  in
  let collude =
    Arg.(
      value
      & opt (some string) None
      & info [ "collude" ] ~docv:"KINDS"
          ~doc:"Arm a verifier coalition: a comma-separated list of verifier \
                kinds (e.g. $(b,parse-check,campion)) that lie consistently — \
                every colluder suppresses the same seeded subset of real \
                findings, so pairwise cross-checks agree on the lie.")
  in
  let collude_oracle =
    Arg.(
      value & flag
      & info [ "collude-oracle" ]
          ~doc:"Compromise the cross-check oracle itself: it joins the \
                coalition and confirms the colluders' fake clean passes. \
                Only the hand-run quorum referees can catch this.")
  in
  let collude_rate =
    Arg.(
      value & opt float 0.
      & info [ "collude-rate" ] ~docv:"R"
          ~doc:"Per-check probability the coalition suppresses a dirty \
                answer. 0 (the default) disarms the coalition entirely and \
                keeps output byte-identical to a sweep without $(b,--collude).")
  in
  let trust =
    Arg.(
      value & flag
      & info [ "trust" ]
          ~doc:"Arm the cross-check trust ledger: suspicious answers are \
                re-run against the raw oracle on a bounded budget, detected \
                liars are quarantined (hand-run checks, findings escalate to \
                human prompts) until probation clears. Incompatible with \
                $(b,--journal) unless $(b,--trust-ledger) persists the \
                cross-check state.")
  in
  let trust_ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "trust-ledger" ] ~docv:"FILE"
          ~doc:"Persist the trust layer's state to $(docv) (one fsync'd JSON \
                line per completed seed: per-kind and oracle trust scores, \
                quarantine flags, and that run's counter deltas). An existing \
                ledger is loaded first, so quarantine earned before a kill \
                survives the resume. Implies $(b,--trust).")
  in
  let halt_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "halt-after" ] ~docv:"N"
          ~doc:"Simulate a crash: exit 3 before running the N+1th fresh \
                (non-journaled) seed. With $(b,--journal)/$(b,--trust-ledger) \
                a subsequent $(b,--resume) run completes the sweep with \
                byte-identical output.")
  in
  let journal_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Record each completed seed to $(docv) (one fsync'd JSON line \
                per run, full transcript fidelity). Without $(b,--resume) an \
                existing file is truncated.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Skip the seeds already recorded in $(b,--journal) and \
                reproduce the identical output from the mix of journaled \
                and fresh runs. Refused without $(b,--journal).")
  in
  let sweep_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "sweep-budget" ] ~docv:"T"
          ~doc:"Certificate-aware scheduling: share a total prompt budget of \
                $(docv) across the sweep (fair-share per remaining seed). A \
                run that stalls out is abandoned early and its unspent \
                allocation is reclaimed for later seeds. Incompatible with \
                $(b,--journal).")
  in
  let triage_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "triage" ] ~docv:"FILE"
          ~doc:"Append every Guard crash bucket from this sweep to $(docv) \
                (JSONL; read back with $(b,cosynth triage)).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each run's certificate.")
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:
         "Byzantine-LLM sweep over a VPP loop: seeded misbehaviour and feedback \
          corruption at the given per-mode rates; every run must terminate within \
          its prompt budget with a convergence certificate (exits nonzero \
          otherwise)")
    Term.(
      const run $ use_case $ runs $ routers $ seed $ truncated $ wrong_dialect
      $ stale $ partial_fix $ off_topic $ dropped $ duplicated $ misattributed
      $ garbled $ lie_fn $ lie_fp $ lie_mutate $ lie_adaptive $ collude
      $ collude_oracle $ collude_rate $ trust $ trust_ledger $ journal_path
      $ resume $ halt_after $ sweep_budget $ triage_path $ disk_chaos_term
      $ verbose)

(* ------------------------------------------------------------------ *)
(* shard                                                               *)
(* ------------------------------------------------------------------ *)

let shard_cmd =
  let run shards use_case runs routers seed crash timeout flake truncate
      worker_loss worker_loss_in_flight lie_fn trust trust_ledger dir out
      max_respawns halt_first disk =
    if shards < 1 then begin
      Printf.eprintf "error: --shards must be >= 1\n%!";
      exit 2
    end;
    let trust = trust || trust_ledger <> None in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let chaos =
      Resilience.Chaos.make ~crash_rate:crash ~timeout_rate:timeout
        ~flake_rate:flake ~truncate_rate:truncate ~worker_loss_rate:worker_loss
        ~seed ()
    in
    let budget = use_case_budget use_case in
    let seeds = List.init runs (fun i -> seed + i) in
    let slices =
      List.filter (fun s -> s <> []) (Exec.Shard.slices ~seeds ~shards)
    in
    (* Each worker is this very binary re-invoked as `cosynth chaos` on a
       contiguous seed slice, journaling to its own per-shard file. The
       fault streams are pinned to the coordinator's base seed via
       --chaos-seed so slicing never changes the schedule; the resume argv
       is the same command plus --resume, which is exactly the recovery
       story a died worker needs (only its unjournaled seeds re-run). *)
    let exe = Sys.executable_name in
    let rate_args =
      List.concat_map
        (fun (flag, v) -> if v = 0. then [] else [ flag; string_of_float v ])
        [
          ("--crash-rate", crash);
          ("--timeout-rate", timeout);
          ("--flake-rate", flake);
          ("--truncate-rate", truncate);
          ("--worker-loss-rate", worker_loss);
          ("--worker-loss-in-flight", worker_loss_in_flight);
          ("--lie-fn", lie_fn);
        ]
    in
    (* Trust-armed sharding: every worker gets its own per-shard trust
       ledger, pre-seeded with the coordinator's baseline (the folded
       state of --trust-ledger, counters zeroed so they are never counted
       twice) at the sentinel seed -1 — a quarantine earned before this
       campaign is in force in every worker from its first run. The
       baseline write happens once, here; a respawned worker resumes from
       whatever its ledger already holds. *)
    let worker_ledger i = Filename.concat dir (Printf.sprintf "shard-%d-trust.jsonl" i) in
    let baseline =
      if trust then
        Option.join (Option.map Resilience.Trust.Ledger_store.load trust_ledger)
      else None
    in
    if trust then
      List.iteri
        (fun i _ ->
          let h = Resilience.Trust.Ledger_store.open_ ~truncate:true (worker_ledger i) in
          (match baseline with
          | None -> ()
          | Some e ->
              Resilience.Trust.Ledger_store.record h ~seed:(-1)
                {
                  e with
                  Resilience.Trust.Ledger_store.counters = Resilience.Trust.zero;
                  quorum = Resilience.Trust.zero_quorum;
                });
          Resilience.Trust.Ledger_store.close h)
        slices;
    let workers =
      List.mapi
        (fun i slice ->
          let journal = Filename.concat dir (Printf.sprintf "shard-%d.jsonl" i) in
          let common =
            [
              "chaos";
              "--use-case";
              use_case_name use_case;
              "--runs";
              string_of_int (List.length slice);
              "--seed";
              string_of_int (List.hd slice);
              "--chaos-seed";
              string_of_int seed;
              "--routers";
              string_of_int routers;
            ]
            @ rate_args
            (* Disk faults are injected in the workers — the processes
               doing the journaled writes — not in the coordinator, whose
               merge already goes through the store's atomic-rewrite path
               (drilled in-process by the D1 gate). A crashed worker
               (exit 3) is a dead shard: the supervisor respawns it with
               the resume argv and replay skips the torn line. *)
            @ disk_chaos_args disk
            @ (if trust then [ "--trust-ledger"; worker_ledger i ] else [])
            @ [ "--journal"; journal ]
          in
          let fresh =
            common
            @
            match halt_first with
            | Some n when i = 0 -> [ "--halt-after"; string_of_int n ]
            | _ -> []
          in
          {
            Exec.Shard.argv = Array.of_list (exe :: fresh);
            resume_argv = Array.of_list ((exe :: common) @ [ "--resume" ]);
            journal;
            seeds = slice;
          })
        slices
    in
    Printf.eprintf "shard: %d worker(s) over %d seed(s), %s sweep\n%!"
      (List.length workers) runs (use_case_name use_case);
    (* Early-abandoned classification for the per-shard counter: a record
       the supervisor gave up on (ok=false), or a completed run whose
       certificate says it stalled out — both handed budget back early.
       Stderr-only bookkeeping: the coordinator's stdout stays
       byte-identical to the sequential sweep. *)
    let abandoned payload =
      let mem f name = Option.bind (Netcore.Json.member name payload) f in
      match mem Netcore.Json.to_bool "ok" with
      | Some false -> true
      | _ -> (
          match
            Option.bind
              (Netcore.Json.member "certificate" payload)
              (fun c ->
                Option.bind (Netcore.Json.member "kind" c) Netcore.Json.to_str)
          with
          | Some "stalled" -> true
          | _ -> false)
    in
    match Exec.Shard.run ~max_respawns ~abandoned ~workers () with
    | Error e ->
        Printf.eprintf "error: %s\n%!" e;
        1
    | Ok report ->
        (* Per-shard trust counters ride the stderr bookkeeping line: each
           worker's ledger folds to exactly its own deltas (the pre-seeded
           baseline carries zero counters), so the merged stdout below
           stays byte-comparable to the sequential sweep. *)
        let shard_trust i =
          if not trust then None
          else Resilience.Trust.Ledger_store.load (worker_ledger i)
        in
        List.iter
          (fun (r : Exec.Shard.shard_report) ->
            Printf.eprintf "shard %d: %d seed(s), %d launch(es)%s%s%s\n%!"
              r.Exec.Shard.shard r.Exec.Shard.owned r.Exec.Shard.launches
              (match r.Exec.Shard.recovered with
              | [] -> ""
              | rs ->
                  Printf.sprintf ", %d re-run after a worker death"
                    (List.length rs))
              (if r.Exec.Shard.abandoned_early = 0 then ""
               else
                 Printf.sprintf ", %d abandoned early"
                   r.Exec.Shard.abandoned_early)
              (match shard_trust r.Exec.Shard.shard with
              | None -> ""
              | Some e ->
                  let c = e.Resilience.Trust.Ledger_store.counters in
                  Printf.sprintf ", trust checks=%d lies=%d quarantines=%d"
                    c.Resilience.Trust.cross_checks
                    c.Resilience.Trust.disagreements
                    c.Resilience.Trust.quarantines))
          report.Exec.Shard.shards;
        (* Merge the per-shard ledger deltas in seed order (slices are
           contiguous and ascending, and the merge itself is commutative):
           state merges conservatively, per-seed counter deltas sum — the
           merged entry is what a sequential trust-armed sweep would have
           folded. The coordinator's --trust-ledger gets it as one line at
           the base seed, inheriting across campaigns. *)
        let merged_trust =
          if not trust then None
          else
            List.fold_left
              (fun acc (i, _) ->
                match (acc, shard_trust i) with
                | None, e | e, None -> e
                | Some a, Some b -> Some (Resilience.Trust.Ledger_store.merge a b))
              None
              (List.mapi (fun i s -> (i, s)) slices)
        in
        (match (trust_ledger, merged_trust) with
        | Some path, Some e ->
            let h = Resilience.Trust.Ledger_store.open_ ~truncate:false path in
            Resilience.Trust.Ledger_store.record h ~seed e;
            Resilience.Trust.Ledger_store.close h;
            Printf.eprintf "shard: merged trust ledger written to %s\n%!" path
        | _ -> ());
        let out =
          match out with Some o -> o | None -> Filename.concat dir "merged.jsonl"
        in
        Exec.Shard.write_merged ~path:out report.Exec.Shard.merged;
        Printf.eprintf "shard: merged journal written to %s\n%!" out;
        (* Reprint the sequential sweep's summary block from the merged
           records: the coordinator's stdout (and the merged journal's
           bytes) must be indistinguishable from `cosynth chaos` run
           unsharded — make shard-smoke and the S1 gate cmp both. *)
        let outcomes =
          List.map
            (fun (s, payload) ->
              match chaos_decode payload with
              | Some o -> (s, o)
              | None ->
                  ( s,
                    Exec.Supervisor.Abandoned
                      { attempts = 0; reason = "undecodable journal record" } ))
            report.Exec.Shard.merged
        in
        let violations = print_sweep_summary ~chaos ~budget outcomes in
        (* Stdout parity with a sequential trust-armed sweep: the same
           trust/quorum lines, folded from the coordinator ledger when one
           is kept (old campaigns included, as a resumed sequential ledger
           would fold them) or from this campaign's merged deltas alone. *)
        (if trust then
           match trust_ledger with
           | Some _ ->
               print_trust_summary ~trust_ledger
                 ~trust_before:(Resilience.Trust.snapshot ())
                 ~quorum_before:(Resilience.Trust.quorum_snapshot ())
                 ()
           | None ->
               let d, q =
                 match merged_trust with
                 | Some e ->
                     ( e.Resilience.Trust.Ledger_store.counters,
                       e.Resilience.Trust.Ledger_store.quorum )
                 | None -> (Resilience.Trust.zero, Resilience.Trust.zero_quorum)
               in
               print_trust_lines d q);
        List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) violations;
        if violations <> [] then 1 else 0
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N" ~doc:"Worker processes to partition the seed range across.")
  in
  let use_case = use_case_conv ~default:`No_transit [ "use-case" ] in
  let runs = Arg.(value & opt int 20 & info [ "runs" ] ~docv:"N") in
  let routers = Arg.(value & opt int 7 & info [ "routers" ] ~docv:"N") in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Sweep base seed; also the fault-stream seed every worker is \
                pinned to, so the sharded sweep equals the sequential one.")
  in
  let rate name doc = Arg.(value & opt float 0. & info [ name ] ~docv:"R" ~doc) in
  let crash = rate "crash-rate" "Per-call crash probability, forwarded to every worker." in
  let timeout = rate "timeout-rate" "Per-call timeout probability, forwarded to every worker." in
  let flake = rate "flake-rate" "Per-call transient-failure probability, forwarded to every worker." in
  let truncate = rate "truncate-rate" "Per-call truncated-findings probability, forwarded to every worker." in
  let worker_loss = rate "worker-loss-rate" "Per-dispatch worker-domain-loss probability, forwarded to every worker." in
  let worker_loss_in_flight =
    rate "worker-loss-in-flight" "Fraction of domain losses striking mid-task, forwarded to every worker."
  in
  let lie_fn =
    rate "lie-fn"
      "Per-check verifier false-negative probability, forwarded to every \
       worker (keyed on the coordinator's base seed, so the sharded lie \
       stream equals the sequential one)."
  in
  let trust =
    Arg.(
      value & flag
      & info [ "trust" ]
          ~doc:"Arm the cross-check trust ledger in every worker; each \
                shard records its deltas to $(b,--journal-dir)/shard-K-trust.jsonl \
                and the coordinator merges them in seed order.")
  in
  let trust_ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "trust-ledger" ] ~docv:"FILE"
          ~doc:"Coordinator trust ledger: its folded state is pre-seeded \
                into every worker's per-shard ledger (so inherited \
                quarantine is in force everywhere), and the merged deltas \
                of the campaign are appended back as one line. Implies \
                $(b,--trust).")
  in
  let dir =
    Arg.(
      value
      & opt string "shards"
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:"Per-shard journals land here as shard-K.jsonl (created if missing).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Merged journal path (default: $(b,--journal-dir)/merged.jsonl). \
                Byte-identical to the journal of the sequential sweep.")
  in
  let max_respawns =
    Arg.(
      value & opt int 2
      & info [ "max-respawns" ] ~docv:"N"
          ~doc:"Re-spawn budget per shard; a dead worker is resumed from its \
                journal so only unjournaled seeds re-run.")
  in
  let halt_first =
    Arg.(
      value
      & opt (some int) None
      & info [ "halt-first" ] ~docv:"N"
          ~doc:"Kill shard 0's first launch after $(docv) fresh runs (a \
                simulated worker crash; used by $(b,make shard-smoke) to \
                exercise recovery).")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Shard a seeded chaos sweep across worker processes: spawn one \
          `cosynth chaos` per contiguous seed slice, recover dead shards from \
          their journals, merge in seed order, and print the sequential \
          sweep's summary (exits nonzero on violations or unrecovered shards)")
    Term.(
      const run $ shards $ use_case $ runs $ routers $ seed $ crash $ timeout
      $ flake $ truncate $ worker_loss $ worker_loss_in_flight $ lie_fn $ trust
      $ trust_ledger $ dir $ out $ max_respawns $ halt_first $ disk_chaos_term)

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run socket jobs round_budget_cap stage_budget_cap max_in_flight max_queue
      max_per_client max_deadline_ms retry_after_ms io_timeout_ms drain_grace_ms
      admission_file triage_path trust_ledger_path debug_jobs supervise
      max_restarts disk =
    if supervise then begin
      (* Supervisor mode: respawn a crashed daemon (nonzero exit or fatal
         signal) with a bounded budget; a clean exit 0 — shutdown or drain
         — ends the loop. The restart count rides down in the environment
         so the child reports it in stats/health. *)
      let exe = Sys.executable_name in
      let child_argv =
        Array.of_list
          ([ exe; "serve"; "--socket"; socket ]
          @ (match jobs with Some j -> [ "-j"; string_of_int j ] | None -> [])
          @ [
              "--round-budget"; string_of_int round_budget_cap;
              "--stage-budget"; string_of_int stage_budget_cap;
              "--max-in-flight"; string_of_int max_in_flight;
              "--max-queue"; string_of_int max_queue;
              "--max-per-client"; string_of_int max_per_client;
              "--max-deadline-ms"; string_of_int max_deadline_ms;
              "--retry-after-ms"; string_of_int retry_after_ms;
              "--io-timeout-ms"; string_of_int io_timeout_ms;
              "--drain-grace-ms"; string_of_int drain_grace_ms;
            ]
          @ (if debug_jobs then [ "--debug-jobs" ] else [])
          @ (match admission_file with
            | Some p -> [ "--admission-file"; p ]
            | None -> [])
          @ (match triage_path with Some p -> [ "--triage"; p ] | None -> [])
          @ (match trust_ledger_path with
            | Some p -> [ "--trust-ledger"; p ]
            | None -> [])
          (* Faults belong in the daemon doing the ledger/triage writes,
             not in the supervisor: forward the flags, stay clean here. *)
          @ disk_chaos_args disk)
      in
      let restarts = ref 0 in
      let child = ref None in
      (* Forward TERM/INT so killing the supervisor drains the daemon
         instead of orphaning it; the child's clean exit then ends us. *)
      List.iter
        (fun s ->
          Sys.set_signal s
            (Sys.Signal_handle
               (fun _ ->
                 match !child with
                 | Some pid -> ( try Unix.kill pid s with _ -> ())
                 | None -> ())))
        [ Sys.sigterm; Sys.sigint ];
      let env_for n =
        let keep =
          List.filter
            (fun s ->
              not (String.starts_with ~prefix:"COSYNTH_SERVE_RESTARTS=" s))
            (Array.to_list (Unix.environment ()))
        in
        Array.of_list (keep @ [ Printf.sprintf "COSYNTH_SERVE_RESTARTS=%d" n ])
      in
      let rec waitpid pid =
        try snd (Unix.waitpid [] pid)
        with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid pid
      in
      let status_to_string = function
        | Unix.WEXITED n -> Printf.sprintf "exited %d" n
        | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
        | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n
      in
      let rec loop () =
        let pid =
          Unix.create_process_env exe child_argv (env_for !restarts) Unix.stdin
            Unix.stdout Unix.stderr
        in
        child := Some pid;
        let st = waitpid pid in
        child := None;
        match st with
        | Unix.WEXITED 0 -> 0
        | st when !restarts >= max_restarts ->
            Printf.eprintf
              "cosynth serve: supervisor: daemon %s; restart budget (%d) spent\n%!"
              (status_to_string st) max_restarts;
            1
        | st ->
            incr restarts;
            Printf.eprintf
              "cosynth serve: supervisor: daemon %s; restart %d/%d\n%!"
              (status_to_string st) !restarts max_restarts;
            loop ()
      in
      loop ()
    end
    else begin
      (* In the daemon the Guard is the crash boundary, so a Crashed from
         a crash-after schedule surfaces as a failed request rather than
         a process death; the rate faults (torn/short/fsync-fail on the
         ledger and triage writes) are the useful knobs here. *)
      disk_chaos_arm disk;
      let restarts =
        match Sys.getenv_opt "COSYNTH_SERVE_RESTARTS" with
        | Some s -> ( try int_of_string s with _ -> 0)
        | None -> 0
      in
      let cfg =
        {
          Cosynth.Service.domains = jobs;
          round_budget_cap;
          stage_budget_cap;
          admission =
            {
              Resilience.Admission.max_in_flight;
              max_queue;
              max_per_client;
              max_deadline_ms;
              retry_after_ms;
            };
          admission_file;
          io_timeout_ms;
          drain_grace_ms;
          handle_signals = true;
          debug_jobs;
          triage = triage_path;
          restarts;
          trust_ledger = trust_ledger_path;
        }
      in
      let summary =
        Cosynth.Service.serve
          ~on_ready:(fun ~domains ->
            Printf.printf "cosynth serve: listening on %s (pool: %d domain(s))\n%!"
              socket domains)
          ~socket_path:socket cfg
      in
      if summary.Cosynth.Service.drained then
        Printf.printf
          "cosynth serve: %d request(s) served, drained (%d shed, %d timed out)\n%!"
          summary.Cosynth.Service.served summary.Cosynth.Service.shed
          summary.Cosynth.Service.timed_out
      else
        (* The shutdown-path line is pinned: an unloaded single-client
           session must remain byte-identical to the pre-hardening daemon. *)
        Printf.printf "cosynth serve: %d request(s) served, shut down cleanly\n%!"
          summary.Cosynth.Service.served;
      disk_chaos_footer disk;
      0
    end
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket to listen on (a stale file is replaced).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains for the shared pool (default: \
                COSYNTH_POOL_SIZE or the machine; 0 = sequential).")
  in
  let round_budget =
    Arg.(
      value & opt int 64
      & info [ "round-budget" ] ~docv:"T"
          ~doc:"Cap on the per-round verifier tick budget a request may ask \
                for (the per-client budget).")
  in
  let stage_budget =
    Arg.(
      value & opt int 32
      & info [ "stage-budget" ] ~docv:"T"
          ~doc:"Per-stage tick watchdog for every request.")
  in
  let dflt = Resilience.Admission.default_config in
  let max_in_flight =
    Arg.(
      value & opt int dflt.Resilience.Admission.max_in_flight
      & info [ "max-in-flight" ] ~docv:"N"
          ~doc:"Work jobs running concurrently; beyond it requests queue.")
  in
  let max_queue =
    Arg.(
      value & opt int dflt.Resilience.Admission.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Requests allowed to wait for a slot; one more is shed with \
                a structured retry-after frame instead of queueing forever.")
  in
  let max_per_client =
    Arg.(
      value & opt int dflt.Resilience.Admission.max_per_client
      & info [ "max-per-client" ] ~docv:"N"
          ~doc:"Concurrent work jobs per client identity (the request's \
                $(b,client) field, defaulting to its connection).")
  in
  let max_deadline_ms =
    Arg.(
      value & opt int dflt.Resilience.Admission.max_deadline_ms
      & info [ "max-deadline-ms" ] ~docv:"MS"
          ~doc:"Server cap a request's $(b,deadline_ms) is clamped to; an \
                expired job answers with a structured timeout frame.")
  in
  let retry_after_ms =
    Arg.(
      value & opt int dflt.Resilience.Admission.retry_after_ms
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Back-off hint carried in shed frames.")
  in
  let io_timeout_ms =
    Arg.(
      value & opt int 30_000
      & info [ "io-timeout-ms" ] ~docv:"MS"
          ~doc:"Socket read/write timeout: a peer stalling mid-frame drops \
                its own connection instead of pinning a handler thread \
                (0 disables).")
  in
  let drain_grace_ms =
    Arg.(
      value & opt int 1_000
      & info [ "drain-grace-ms" ] ~docv:"MS"
          ~doc:"After a drain begins (a $(b,drain) job or SIGTERM/SIGINT), \
                requests on live connections are rejected with a structured \
                frame for $(docv) before connections close.")
  in
  let admission_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "admission-file" ] ~docv:"FILE"
          ~doc:"Hot reload: on SIGHUP, re-read the admission caps from this \
                JSON file (keys $(b,max_in_flight), $(b,max_queue), \
                $(b,max_per_client), $(b,max_deadline_ms), \
                $(b,retry_after_ms); missing keys keep their current values) \
                and swap them in without a drain. A malformed or unreadable \
                file keeps the caps in force; every reload bumps the \
                $(b,reloads) counter in $(b,health)/$(b,stats).")
  in
  let triage_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "triage" ] ~docv:"FILE"
          ~doc:"Append every Guard crash bucket from this daemon run \
                (deadline expiries included) to $(docv) at drain/shutdown \
                (JSONL; read back with $(b,cosynth triage)).")
  in
  let trust_ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "trust-ledger" ] ~docv:"FILE"
          ~doc:"Arm the persistent trust layer: load $(docv) at startup (a \
                quarantine recorded before a restart — or by a sweep sharing \
                the file — governs the very first request), run \
                $(b,translate)/$(b,synth)/$(b,repair) under cross-checks, \
                and append one fsync'd line per job. $(b,health) and \
                $(b,stats) gain a $(b,trust) object while set.")
  in
  let debug_jobs =
    Arg.(
      value & flag
      & info [ "debug-jobs" ]
          ~doc:"Enable the $(b,sleep) and $(b,crash) harness jobs (the \
                overload gate's load generator and the supervisor smoke's \
                crash trigger).")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:"Run as a supervisor: spawn the daemon as a child process and \
                respawn it after a crash (bounded by $(b,--max-restarts)); \
                restart counts surface in the daemon's $(b,stats)/$(b,health).")
  in
  let max_restarts =
    Arg.(
      value & opt int 3
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:"Respawn budget under $(b,--supervise).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Persistent synthesis daemon: accept synthesis / translation / \
          repair / parse jobs over a Unix-domain socket (length-prefixed \
          JSON), keeping worker domains, the parse memo and verifier state \
          warm across requests. Hardened for production traffic: bounded \
          admission with load shedding, per-request deadlines, slow-client \
          io timeouts, graceful drain on SIGTERM/SIGINT or the $(b,drain) \
          job, and a $(b,--supervise) mode that respawns a crashed daemon")
    Term.(
      const run $ socket $ jobs $ round_budget $ stage_budget $ max_in_flight
      $ max_queue $ max_per_client $ max_deadline_ms $ retry_after_ms
      $ io_timeout_ms $ drain_grace_ms $ admission_file $ triage_path
      $ trust_ledger $ debug_jobs $ supervise $ max_restarts $ disk_chaos_term)

let client_cmd =
  let known_jobs =
    [
      "ping"; "stats"; "health"; "parse"; "translate"; "synth"; "repair";
      "sleep"; "crash"; "drain"; "shutdown";
    ]
  in
  let run socket job seed routers count budget dialect file deadline_ms client_id
      sleep_ms retry_overloaded connect_budget_ms =
    let module J = Netcore.Json in
    if not (List.mem job known_jobs) then begin
      Printf.eprintf "error: unknown job %S (%s)\n%!" job
        (String.concat "|" known_jobs);
      exit 2
    end;
    let text = Option.map read_file file in
    let opt_budget =
      match budget with Some b -> [ ("budget", J.Int b) ] | None -> []
    in
    let opt_common =
      (match deadline_ms with
      | Some d -> [ ("deadline_ms", J.Int d) ]
      | None -> [])
      @
      match client_id with
      | Some c -> [ ("client", J.String c) ]
      | None -> []
    in
    let reqs =
      match job with
      | "translate" ->
          List.init count (fun i ->
              J.Obj
                ([ ("job", J.String job); ("seed", J.Int (seed + i)) ]
                @ opt_budget @ opt_common
                @ match text with Some t -> [ ("text", J.String t) ] | None -> []))
      | "synth" | "repair" ->
          List.init count (fun i ->
              J.Obj
                ([
                   ("job", J.String job);
                   ("seed", J.Int (seed + i));
                   ("routers", J.Int routers);
                 ]
                @ opt_budget @ opt_common))
      | "parse" ->
          let t = match text with Some t -> t | None -> Cisco.Samples.border_router in
          List.init count (fun _ ->
              J.Obj
                ([
                   ("job", J.String job);
                   ("dialect", J.String dialect);
                   ("text", J.String t);
                 ]
                @ opt_common))
      | "sleep" ->
          List.init count (fun _ ->
              J.Obj
                ([ ("job", J.String job); ("ms", J.Int sleep_ms) ] @ opt_common))
      | _ -> [ J.Obj [ ("job", J.String job) ] ]
    in
    (* A shed frame is flow control, not failure: honor its retry_after_ms
       hint up to --retry-overloaded times, and only then surface the shed
       frame itself (so the exit code and JSON stream still tell the truth
       when the server stays saturated). *)
    let shed_retries = ref 0 in
    let rec send fd req attempts_left =
      match Exec.Serve.request fd req with
      | reply -> reply
      | exception Exec.Serve.Server_overloaded { retry_after_ms } ->
          if attempts_left <= 0 then
            J.Obj
              [
                ("ok", J.Bool false);
                ("error", J.String "overloaded: retries exhausted");
                ("shed", J.Bool true);
                ("retry_after_ms", J.Int retry_after_ms);
              ]
          else begin
            incr shed_retries;
            Thread.delay (float_of_int (max 0 retry_after_ms) /. 1000.);
            send fd req (attempts_left - 1)
          end
    in
    let t0 = Unix.gettimeofday () in
    let replies =
      Exec.Serve.with_connection ~total_budget_ms:connect_budget_ms
        ~socket_path:socket (fun fd ->
          List.map (fun req -> send fd req retry_overloaded) reqs)
    in
    let dt = Unix.gettimeofday () -. t0 in
    List.iter (fun r -> print_endline (J.to_string r)) replies;
    (* Timing to stderr so stdout stays a clean JSON-lines stream. *)
    Printf.eprintf "client: %d request(s) in %.3fs (%.1f req/s)\n%!"
      (List.length replies) dt
      (float_of_int (List.length replies) /. Float.max dt 1e-9);
    if !shed_retries > 0 then
      Printf.eprintf "client: %d shed retry(ies)\n%!" !shed_retries;
    if
      List.for_all
        (fun r -> Option.bind (J.member "ok" r) J.to_bool = Some true)
        replies
    then 0
    else 1
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's Unix-domain socket.")
  in
  let job =
    Arg.(
      value
      & pos 0 string "ping"
      & info [] ~docv:"JOB"
          ~doc:
            "ping|stats|health|parse|translate|synth|repair|sleep|crash|drain|\
             shutdown (sleep/crash need a $(b,--debug-jobs) daemon).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let routers = Arg.(value & opt int 5 & info [ "routers" ] ~docv:"N") in
  let count =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"K"
          ~doc:"Send $(docv) requests on one connection (seeded jobs use \
                consecutive seeds) — the warm-throughput probe.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"T"
          ~doc:"Per-round verifier tick budget to request (the server caps it).")
  in
  let dialect =
    Arg.(value & opt string "cisco" & info [ "dialect" ] ~docv:"D" ~doc:"For parse jobs.")
  in
  let file =
    Arg.(
      value
      & opt (some Arg.file) None
      & info [ "file" ] ~docv:"CONFIG" ~doc:"Config text for parse/translate jobs.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline to ask for (the server clamps it to its \
                $(b,--max-deadline-ms); an expired job answers a structured \
                timeout frame).")
  in
  let client_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "client" ] ~docv:"NAME"
          ~doc:"Client identity for the server's per-client admission cap \
                (defaults server-side to the connection).")
  in
  let sleep_ms =
    Arg.(
      value & opt int 100
      & info [ "ms" ] ~docv:"MS" ~doc:"Duration for $(b,sleep) jobs.")
  in
  let retry_overloaded =
    Arg.(
      value & opt int 0
      & info [ "retry-overloaded" ] ~docv:"N"
          ~doc:"Retry a shed request up to $(docv) times, honoring each shed \
                frame's $(b,retry_after_ms) hint between attempts.")
  in
  let connect_budget_ms =
    Arg.(
      value & opt int 1_000
      & info [ "connect-budget-ms" ] ~docv:"MS"
          ~doc:"Total time to keep retrying the initial connection with \
                exponential backoff (covers daemon startup and supervised \
                respawns).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Drive a running `cosynth serve` daemon: send one or more jobs over \
          the socket and print each JSON reply (exits nonzero unless every \
          reply is ok)")
    Term.(
      const run $ socket $ job $ seed $ routers $ count $ budget $ dialect
      $ file $ deadline_ms $ client_id $ sleep_ms $ retry_overloaded
      $ connect_budget_ms)

(* ------------------------------------------------------------------ *)
(* fuzz / triage                                                       *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run seeds_n mutations seed triage_path promote_dir =
    Resilience.Guard.reset ();
    let seeds = List.init seeds_n (fun i -> seed + i) in
    let escapes = ref 0 in
    let all_escapes = ref [] in
    let report name (r : Fuzz.Props.report) =
      Printf.printf "%s: %d mutated input(s), %d escape(s)\n" name r.Fuzz.Props.inputs
        (List.length r.Fuzz.Props.escapes);
      all_escapes := !all_escapes @ r.Fuzz.Props.escapes;
      List.iter
        (fun e ->
          incr escapes;
          Printf.printf "ESCAPE %s\n" (Fuzz.Props.escape_to_string e))
        r.Fuzz.Props.escapes
    in
    report "cisco" (Fuzz.Props.run Fuzz.Corpus.Cisco ~seeds ~mutations);
    report "junos" (Fuzz.Props.run Fuzz.Corpus.Junos ~seeds ~mutations);
    report "topology" (Fuzz.Props.run_topology ~seeds ~mutations ());
    report "policy" (Fuzz.Props.run_policy ~seeds ~mutations ());
    (match promote_dir with
    | Some dir ->
        let written = Fuzz.Props.promote ~dir !all_escapes in
        List.iter
          (fun (name, (e : Fuzz.Props.escape)) ->
            Printf.printf "promoted: %s (%s in %s, %dB minimized)\n" name
              e.Fuzz.Props.violation.Fuzz.Props.constructor
              e.Fuzz.Props.violation.Fuzz.Props.stage
              (String.length e.Fuzz.Props.minimized))
          written;
        Printf.printf "promote-corpus: %d new bucket(s) written to %s\n"
          (List.length written) dir
    | None -> ());
    (match triage_path with
    | Some path ->
        Resilience.Triage.record ~path ~seed ();
        Printf.printf "triage: %d crash bucket(s) appended to %s\n"
          (List.length (Resilience.Guard.crashes ()))
          path
    | None -> ());
    if !escapes > 0 then 1 else 0
  in
  let seeds_n = Arg.(value & opt int 4 & info [ "seeds" ] ~docv:"N") in
  let mutations = Arg.(value & opt int 40 & info [ "mutations" ] ~docv:"M") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.") in
  let triage_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "triage" ] ~docv:"FILE"
          ~doc:"Append every Guard crash bucket from this campaign to $(docv) \
                (JSONL; read back with $(b,cosynth triage)).")
  in
  let promote_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "promote-corpus" ] ~docv:"DIR"
          ~doc:"Promote each crasher that opens a new (stage x constructor) \
                triage bucket into $(docv) as a minimized \
                $(b,promoted-*.txt) regression seed; the F1 gate replays \
                promoted entries first. Idempotent: buckets already \
                promoted are skipped.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Mutation-fuzz every pipeline stage (config dialects, topology \
          dictionaries, policy fragments); exits nonzero on any escape past the \
          Guard firewall")
    Term.(const run $ seeds_n $ mutations $ seed $ triage_path $ promote_dir)

let triage_cmd =
  let run file stage ctor =
    (* Substring filters, case-sensitive like grep without -i: an operator
       chasing one failing stage (or one crash constructor) reads a table
       scoped to it instead of the whole campaign's. No filters — no
       change, so existing triage output is untouched. *)
    let contains ~needle hay =
      let nl = String.length needle and hl = String.length hay in
      nl = 0
      || (nl <= hl
         && (let found = ref false in
             for i = 0 to hl - nl do
               if (not !found) && String.sub hay i nl = needle then found := true
             done;
             !found))
    in
    let keep (r : Resilience.Triage.row) =
      (match stage with
      | None -> true
      | Some s -> contains ~needle:s r.Resilience.Triage.stage)
      && (match ctor with
         | None -> true
         | Some c -> contains ~needle:c r.Resilience.Triage.constructor)
    in
    match List.filter keep (Resilience.Triage.load file) with
    | [] ->
        (match (stage, ctor) with
        | None, None -> Printf.printf "no crash buckets recorded in %s\n" file
        | _ ->
            Printf.printf "no crash buckets in %s match the given filters\n" file);
        0
    | rows ->
        (* UTC so the column is stable across operator timezones; "-" for
           rows journaled by seeded (untimestamped) campaigns. *)
        let fmt_ts = function
          | None -> "-"
          | Some t ->
              let tm = Unix.gmtime t in
              Printf.sprintf "%04d-%02d-%02d %02d:%02dZ" (tm.Unix.tm_year + 1900)
                (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour
                tm.Unix.tm_min
        in
        print_string
          (Cosynth.Report.table ~title:("crash buckets in " ^ file)
             ~header:
               [
                 "stage"; "constructor"; "count"; "first seed"; "last seed";
                 "first seen"; "last seen";
               ]
             (List.map
                (fun (r : Resilience.Triage.row) ->
                  [
                    r.Resilience.Triage.stage;
                    r.Resilience.Triage.constructor;
                    string_of_int r.Resilience.Triage.count;
                    string_of_int r.Resilience.Triage.first_seed;
                    string_of_int r.Resilience.Triage.last_seed;
                    fmt_ts r.Resilience.Triage.first_ts;
                    fmt_ts r.Resilience.Triage.last_ts;
                  ])
                rows));
        0
  in
  let stage =
    Arg.(
      value
      & opt (some string) None
      & info [ "stage" ] ~docv:"S"
          ~doc:"Only buckets whose stage label contains $(docv) (substring \
                match, e.g. $(b,campion) or $(b,serve:)).")
  in
  let ctor =
    Arg.(
      value
      & opt (some string) None
      & info [ "ctor" ] ~docv:"C"
          ~doc:"Only buckets whose crash constructor contains $(docv) \
                (substring match, e.g. $(b,Deadline_exceeded)).")
  in
  Cmd.v
    (Cmd.info "triage"
       ~doc:
         "Print the merged stage x constructor crash-bucket table from a \
          $(b,--triage) JSONL journal (counts summed, first/last-seen seeds), \
          optionally scoped with $(b,--stage)/$(b,--ctor) substring filters")
    Term.(
      const run
      $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
      $ stage $ ctor)

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)
(* ------------------------------------------------------------------ *)

let fsck_cmd =
  let run file lww compact =
    let records, stats = Resilience.Store.read file in
    Printf.printf "%s: lines=%d ok=%d corrupt=%d legacy=%d\n" file
      stats.Resilience.Store.lines stats.Resilience.Store.ok
      stats.Resilience.Store.corrupt stats.Resilience.Store.legacy;
    (if lww then begin
       (* Checkpoint-journal semantics: one surviving record per seed.
          Records without the {"seed", "summary"} envelope (e.g. triage
          rows) are dropped — use plain --compact for those files. *)
       let dropped, kept = Exec.Checkpoint.compact file in
       Printf.printf "compacted (last-write-wins): %d dropped, %d kept\n"
         dropped kept
     end
     else if compact then
       if Resilience.Store.rewrite file records then
         Printf.printf "compacted: %d record(s) kept, corruption dropped\n"
           (List.length records)
       else Printf.printf "compaction failed; file untouched\n");
    (* Nonzero exactly when corruption was observed, so scripts can gate
       on a clean store — compaction repairs the file but the exit code
       still reports what was found. *)
    if stats.Resilience.Store.corrupt = 0 then 0 else 1
  in
  let lww =
    Arg.(
      value & flag
      & info [ "lww" ]
          ~doc:
            "Compact with checkpoint-journal semantics: keep the last \
             record per seed (what replay would use), dropping superseded \
             duplicates, corruption, and records without a seed envelope.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Atomically rewrite the file keeping every decodable record \
             (order preserved, legacy lines re-framed), dropping torn and \
             corrupt lines. Ignored when $(b,--lww) is given.")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check a durable store file (journal, trust ledger, triage): count \
          CRC-verified, corrupt and legacy lines, optionally compact — exits \
          nonzero when corruption was found")
    Term.(
      const run
      $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
      $ lww $ compact)

let () =
  let doc =
    "CoSynth: verified prompt programming for router configurations (HotNets 2023 \
     reproduction)"
  in
  let info = Cmd.info "cosynth" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
         [
           topology_cmd; parse_cmd; diff_cmd; verify_cmd; translate_cmd; synth_cmd;
           sim_cmd; prove_cmd; leverage_cmd; chaos_cmd; adversary_cmd; shard_cmd;
           serve_cmd; client_cmd; fuzz_cmd; triage_cmd; fsck_cmd;
         ]))
